"""FaultPlan semantics: determinism, matching, arming, serialization."""

import pytest

from repro.errors import ReproError
from repro.faults import FaultPlan, FaultRule, corrupt_bytes


def drain(plan, operations):
    """Drive the plan through a call sequence; return fired kinds (or None)."""
    out = []
    for operation, path in operations:
        fault = plan.draw(operation, path=path)
        out.append(fault.kind if fault is not None else None)
    return out


class TestDeterminism:
    def test_same_seed_same_firings(self):
        rules = [FaultRule("read", "corrupt", probability=0.5, max_firings=None)]
        calls = [("read", "/a.bin")] * 40
        first = drain(FaultPlan(rules, seed=7), calls)
        second = drain(FaultPlan(rules, seed=7), calls)
        assert first == second
        assert any(kind == "corrupt" for kind in first)
        assert any(kind is None for kind in first)

    def test_different_seed_differs(self):
        rules = [FaultRule("read", "corrupt", probability=0.5, max_firings=None)]
        calls = [("read", "/a.bin")] * 64
        assert drain(FaultPlan(rules, seed=1), calls) != drain(
            FaultPlan(rules, seed=2), calls
        )

    def test_fraction_is_deterministic(self):
        rules = [FaultRule("read", "corrupt")]
        a = FaultPlan(rules, seed=11)
        b = FaultPlan(rules, seed=11)
        assert a.draw("read").fraction == b.draw("read").fraction

    def test_reset_replays_identically(self):
        plan = FaultPlan(
            [FaultRule("read", "io_error", probability=0.3, max_firings=None)],
            seed=5,
        )
        calls = [("read", None)] * 30
        first = drain(plan, calls)
        plan.reset()
        assert drain(plan, calls) == first


class TestMatching:
    def test_after_skips_early_matches(self):
        plan = FaultPlan([FaultRule("write", "io_error", after=2)])
        assert drain(plan, [("write", None)] * 4) == [None, None, "io_error", None]

    def test_max_firings_disarms(self):
        plan = FaultPlan([FaultRule("read", "io_error", max_firings=2)])
        kinds = drain(plan, [("read", None)] * 5)
        assert kinds == ["io_error", "io_error", None, None, None]

    def test_unlimited_firings(self):
        plan = FaultPlan([FaultRule("read", "io_error", max_firings=None)])
        assert drain(plan, [("read", None)] * 3) == ["io_error"] * 3

    def test_path_filter(self):
        plan = FaultPlan(
            [FaultRule("write", "io_error", path_contains="residual")]
        )
        assert plan.draw("write", path="/tmp/partitions/p0.bin") is None
        fault = plan.draw("write", path="/tmp/residual_0002.bin")
        assert fault is not None and fault.kind == "io_error"

    def test_operation_filter(self):
        plan = FaultPlan([FaultRule("read", "io_error")])
        assert plan.draw("write", path="/x") is None
        assert plan.draw("read", path="/x").kind == "io_error"

    def test_first_match_wins(self):
        plan = FaultPlan(
            [
                FaultRule("read", "latency", max_firings=None),
                FaultRule("read", "io_error", max_firings=None),
            ]
        )
        assert plan.draw("read").kind == "latency"

    def test_firings_log(self):
        plan = FaultPlan([FaultRule("read", "corrupt")])
        plan.draw("scan")
        plan.draw("read", path="/g.bin")
        assert [f.kind for f in plan.firings] == ["corrupt"]
        assert plan.firings[0].path == "/g.bin"
        assert plan.firings[0].sequence == 2


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            FaultRule("read", "meteor_strike")

    def test_bad_probability_rejected(self):
        with pytest.raises(ReproError):
            FaultRule("read", "io_error", probability=1.5)

    def test_negative_after_rejected(self):
        with pytest.raises(ReproError):
            FaultRule("read", "io_error", after=-1)


class TestSpecRoundTrip:
    def test_round_trip_preserves_behavior(self):
        original = FaultPlan(
            [
                FaultRule("read", "corrupt", probability=0.4, after=1,
                          max_firings=3, path_contains="res",
                          latency_seconds=0.2),
                FaultRule("chunk", "worker_kill"),
            ],
            seed=13,
        )
        rebuilt = FaultPlan.from_spec(original.to_spec())
        calls = [("read", "/res.bin")] * 20 + [("chunk", None)] * 3
        assert drain(rebuilt, calls) == drain(original, calls)

    def test_spec_is_json_compatible(self):
        import json

        plan = FaultPlan([FaultRule("write", "torn_write")], seed=2)
        assert FaultPlan.from_spec(json.loads(json.dumps(plan.to_spec()))).seed == 2

    def test_malformed_spec_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan.from_spec({"rules": [{"kind": "io_error"}]})
        with pytest.raises(ReproError):
            FaultPlan.from_spec({"rules": [{"operation": "read", "kind": "x"}]})


class TestCorruptBytes:
    def test_flips_exactly_one_byte(self):
        data = bytes(range(32))
        damaged = corrupt_bytes(data, 0.5)
        assert len(damaged) == len(data)
        diffs = [i for i in range(len(data)) if damaged[i] != data[i]]
        assert len(diffs) == 1
        assert damaged[diffs[0]] == data[diffs[0]] ^ 0xFF

    def test_fraction_one_stays_in_bounds(self):
        assert corrupt_bytes(b"ab", 0.999) != b"ab"

    def test_empty_input_unchanged(self):
        assert corrupt_bytes(b"", 0.5) == b""
