"""Fault-injection suite: storage, executor, and end-to-end contracts."""
