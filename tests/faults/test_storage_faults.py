"""Storage-layer fault injection: PageStore, DiskGraph, BufferPool."""

import pytest

from repro.errors import CorruptDataError, StorageError, StorageIOError
from repro.faults import FaultPlan, FaultRule
from repro.storage.diskgraph import DiskGraph
from repro.storage.pagestore import PageStore
from repro.storage.random_access import RandomAccessDiskGraph

from tests.helpers import seeded_gnp


@pytest.fixture
def graph():
    return seeded_gnp(40, 0.2, seed=3)


def make_disk(tmp_path, graph, plan):
    return DiskGraph.create(tmp_path / "g.bin", graph, fault_plan=plan)


class TestPageStoreReadFaults:
    def test_io_error_on_read(self, tmp_path):
        plan = FaultPlan([FaultRule("read", "io_error")])
        store = PageStore(tmp_path / "f.bin", fault_plan=plan)
        store.write_all(b"payload")
        with pytest.raises(StorageIOError) as info:
            store.read_at(0, 4)
        assert info.value.operation == "read"
        # The rule is transient (max_firings=1): the retry goes through.
        assert store.read_at(0, 4) == b"payl"

    def test_short_read_detected(self, tmp_path):
        plan = FaultPlan([FaultRule("read", "short_read")])
        store = PageStore(tmp_path / "f.bin", fault_plan=plan)
        store.write_all(b"x" * 100)
        with pytest.raises(StorageError, match="short read"):
            store.read_at(0, 100)

    def test_latency_returns_correct_data(self, tmp_path):
        plan = FaultPlan([FaultRule("read", "latency", latency_seconds=0.001)])
        store = PageStore(tmp_path / "f.bin", fault_plan=plan)
        store.write_all(b"payload")
        assert store.read_at(0, 7) == b"payload"
        assert [f.kind for f in plan.firings] == ["latency"]

    def test_io_error_on_scan(self, tmp_path):
        plan = FaultPlan([FaultRule("scan", "io_error")])
        store = PageStore(tmp_path / "f.bin", fault_plan=plan)
        store.write_all(b"x" * 10)
        with pytest.raises(StorageIOError):
            list(store.scan_chunks())


class TestPageStoreWriteFaults:
    def test_io_error_on_write(self, tmp_path):
        plan = FaultPlan([FaultRule("write", "io_error")])
        store = PageStore(tmp_path / "f.bin", fault_plan=plan)
        with pytest.raises(StorageIOError):
            store.write_all(b"data")
        assert not store.exists()

    def test_torn_write_persists_prefix_and_raises(self, tmp_path):
        plan = FaultPlan([FaultRule("write", "torn_write")], seed=1)
        store = PageStore(tmp_path / "f.bin", fault_plan=plan)
        with pytest.raises(StorageIOError, match="torn write"):
            store.write_all(b"A" * 1000)
        # A deterministic prefix of the block hit the disk.
        assert 0 <= store.size_bytes() < 1000
        assert store.size_bytes() == int(plan.firings[0].fraction * 1000)

    def test_torn_patch_persists_nothing(self, tmp_path):
        plan = FaultPlan([FaultRule("write", "torn_write", after=1)])
        store = PageStore(tmp_path / "f.bin", fault_plan=plan)
        store.write_all(b"B" * 64)  # first write passes (after=1)
        with pytest.raises(StorageIOError, match="torn write"):
            store.patch(0, b"C" * 8)
        assert store.read_all() == b"B" * 64


class TestDiskGraphFaults:
    def test_corrupt_scan_detected_by_record_crc(self, tmp_path, graph):
        plan = FaultPlan([FaultRule("scan", "corrupt")], seed=4)
        disk = make_disk(tmp_path, graph, plan)
        with pytest.raises(CorruptDataError):
            list(disk.scan())

    def test_contract_any_corrupt_seed(self, tmp_path, graph):
        # Whatever byte the seed picks (record body, header, counts), the
        # outcome is a typed error or the exact fault-free stream — never
        # silently different records.
        baseline = list(DiskGraph.create(tmp_path / "base.bin", graph).scan())
        for seed in range(8):
            plan = FaultPlan([FaultRule("scan", "corrupt")], seed=seed)
            disk = DiskGraph.create(tmp_path / f"g{seed}.bin", graph, fault_plan=plan)
            try:
                records = list(disk.scan())
            except (CorruptDataError, StorageError):
                continue
            assert records == baseline

    def test_short_read_scan_raises(self, tmp_path, graph):
        plan = FaultPlan([FaultRule("scan", "short_read")], seed=2)
        disk = make_disk(tmp_path, graph, plan)
        with pytest.raises(StorageError):
            list(disk.scan())

    def test_torn_residual_write_raises_and_source_survives(self, tmp_path, graph):
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        plan = FaultPlan(
            [FaultRule("write", "torn_write", path_contains="residual")], seed=6
        )
        faulty = DiskGraph.open(disk.path, fault_plan=plan)
        removed = list(graph.vertices())[:5]
        with pytest.raises(StorageIOError):
            faulty.rewrite_without(removed, tmp_path / "residual.bin")
        # The source graph is untouched and still scans clean.
        assert DiskGraph.open(disk.path).num_vertices == disk.num_vertices
        list(DiskGraph.open(disk.path).scan())

    def test_rewrite_propagates_fault_plan(self, tmp_path, graph):
        plan = FaultPlan([], seed=0)
        disk = make_disk(tmp_path, graph, plan)
        residual = disk.rewrite_without([0, 1], tmp_path / "r.bin")
        assert residual.fault_plan is plan


class TestBufferPoolFaults:
    def test_pool_read_corruption_caught_by_record_crc(self, tmp_path, graph):
        # The pool caches a damaged page; every record decoded from it is
        # either clean (byte landed elsewhere) or raises typed — a CRC
        # mismatch, or a format error when the byte hit a length field.
        # The sweep must demonstrate the CRC path specifically at least
        # once: that detection simply does not exist in format v1.
        crc_detections = 0
        for seed in range(6):
            plan = FaultPlan(
                [FaultRule("pool_read", "corrupt", max_firings=None)], seed=seed
            )
            disk = DiskGraph.create(tmp_path / f"g{seed}.bin", graph)
            ram = RandomAccessDiskGraph(
                DiskGraph.open(disk.path, fault_plan=plan), capacity_pages=4
            )
            try:
                for vertex in sorted(graph.vertices()):
                    ram.neighbors(vertex)
            except CorruptDataError:
                crc_detections += 1
            except StorageError:
                pass
        assert crc_detections > 0

    def test_pool_read_io_error(self, tmp_path, graph):
        plan = FaultPlan([FaultRule("pool_read", "io_error")])
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        ram = RandomAccessDiskGraph(
            DiskGraph.open(disk.path, fault_plan=plan), capacity_pages=4
        )
        with pytest.raises(StorageIOError):
            ram.neighbors(0)
        # Transient: the next fetch succeeds and matches the graph.
        assert ram.neighbors(0) == graph.neighbors(0)


class TestVerifyToggle:
    def test_verify_off_skips_detection(self, tmp_path, graph):
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        # Flip a byte deep inside a neighbor list, past the header.
        raw = bytearray((tmp_path / "g.bin").read_bytes())
        position = disk.header_bytes + 20
        raw[position] ^= 0xFF
        (tmp_path / "g.bin").write_bytes(bytes(raw))
        with pytest.raises((CorruptDataError, StorageError)):
            list(DiskGraph.open(disk.path).scan())
        relaxed = DiskGraph.open(disk.path, verify_checksums=False)
        try:
            list(relaxed.scan())  # damage flows through, undetected
        except CorruptDataError:  # pragma: no cover - must not happen
            pytest.fail("verify_checksums=False must not verify record CRCs")
        except StorageError:
            # The flipped byte may still break framing; that is a format
            # error, not a checksum verification.
            pass
