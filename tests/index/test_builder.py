"""Index construction: determinism, crash safety, the sink."""

import json

import pytest

from repro.core.result import CliqueFileSink
from repro.errors import StorageError
from repro.index import CliqueIndex, CliqueIndexSink, build_index
from repro.index.format import MANIFEST_FILENAME, MANIFEST_SCHEMA

from tests.differential.harness import run_enumeration
from tests.helpers import seeded_gnp

INDEX_FILES = ("cliques.dat", "cliques.idx", "postings.dat", "postings.dir")


def _file_bytes(directory):
    return {name: (directory / name).read_bytes() for name in INDEX_FILES}


class TestDeterminism:
    def test_double_build_is_byte_identical(self, tmp_path):
        cliques = [frozenset({0, 1, 2}), frozenset({2, 3}), frozenset({3, 4, 5})]
        build_index(cliques, tmp_path / "a")
        build_index(cliques, tmp_path / "b")
        assert _file_bytes(tmp_path / "a") == _file_bytes(tmp_path / "b")

    def test_stream_order_does_not_matter(self, tmp_path):
        cliques = [frozenset({0, 1, 2}), frozenset({2, 3}), frozenset({3, 4, 5})]
        build_index(cliques, tmp_path / "fwd")
        build_index(list(reversed(cliques)), tmp_path / "rev")
        assert _file_bytes(tmp_path / "fwd") == _file_bytes(tmp_path / "rev")

    def test_duplicates_are_collapsed(self, tmp_path):
        once = [frozenset({0, 1}), frozenset({1, 2})]
        build_index(once, tmp_path / "once")
        build_index(once * 3, tmp_path / "thrice")
        assert _file_bytes(tmp_path / "once") == _file_bytes(tmp_path / "thrice")

    @pytest.mark.parametrize("kernel", ["set", "bitset"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_kernel_workers_matrix_builds_identical_indexes(
        self, tmp_path, kernel, workers
    ):
        """The acceptance matrix: every configuration's stream produces the
        same index bytes, and every query matches a brute-force scan."""
        graph = seeded_gnp(48, 0.25, seed=11)
        baseline = run_enumeration(
            graph, tmp_path / "base", kernel="bitset", workers=1
        )
        build_index(baseline.stream, tmp_path / "base_idx")
        result = run_enumeration(
            graph, tmp_path / f"{kernel}_{workers}", kernel=kernel, workers=workers
        )
        directory = tmp_path / f"idx_{kernel}_{workers}"
        build_index(result.stream, directory)
        assert _file_bytes(directory) == _file_bytes(tmp_path / "base_idx")

        canonical = sorted(tuple(sorted(c)) for c in set(result.stream))
        with CliqueIndex(directory) as index:
            assert index.num_cliques == len(canonical)
            for vertex in graph.vertices():
                expected = tuple(
                    cid for cid, c in enumerate(canonical) if vertex in c
                )
                assert index.cliques_containing(vertex) == expected

    @pytest.mark.parametrize("reduction", ["prune", "full"])
    def test_reduction_builds_identical_indexes(self, tmp_path, reduction):
        """Graph reduction must be invisible downstream: the index built
        from a reduced run's stream is byte-identical to the unreduced
        one (the builder canonicalises, so the direct-emissions-first
        ordering of reduced streams cannot leak into the files)."""
        graph = seeded_gnp(48, 0.25, seed=11)
        baseline = run_enumeration(
            graph, tmp_path / "base", kernel="bitset", workers=1, reduction="off"
        )
        build_index(baseline.stream, tmp_path / "base_idx")
        reduced = run_enumeration(
            graph, tmp_path / reduction, kernel="bitset", workers=1,
            reduction=reduction,
        )
        build_index(reduced.stream, tmp_path / f"idx_{reduction}")
        assert _file_bytes(tmp_path / f"idx_{reduction}") == _file_bytes(
            tmp_path / "base_idx"
        )


class TestBuildValidation:
    def test_empty_stream_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="empty"):
            build_index([], tmp_path / "idx")

    def test_report_counts(self, tmp_path):
        report = build_index(
            [frozenset({0, 1, 2}), frozenset({2, 3})], tmp_path / "idx"
        )
        assert report.num_cliques == 2
        assert report.num_vertices == 4
        assert report.max_clique_size == 3
        assert set(report.bytes_by_file) == set(INDEX_FILES) | {MANIFEST_FILENAME}
        assert report.total_bytes == sum(report.bytes_by_file.values())

    def test_manifest_contents(self, tmp_path):
        build_index([frozenset({0, 1, 2}), frozenset({2, 3})], tmp_path / "idx")
        manifest = json.loads((tmp_path / "idx" / MANIFEST_FILENAME).read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["num_cliques"] == 2
        assert manifest["size_histogram"] == {"2": 1, "3": 1}
        for name in INDEX_FILES:
            assert manifest["files"][name]["bytes"] == (
                tmp_path / "idx" / name
            ).stat().st_size


class TestCrashSafety:
    def test_missing_manifest_rejected(self, tmp_path):
        """An interrupted build (manifest never committed) must not open."""
        build_index([frozenset({0, 1})], tmp_path / "idx")
        (tmp_path / "idx" / MANIFEST_FILENAME).unlink()
        with pytest.raises(StorageError, match="missing"):
            CliqueIndex(tmp_path / "idx")

    def test_wrong_schema_rejected(self, tmp_path):
        build_index([frozenset({0, 1})], tmp_path / "idx")
        path = tmp_path / "idx" / MANIFEST_FILENAME
        manifest = json.loads(path.read_text())
        manifest["schema"] = "repro.index/999"
        path.write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="schema"):
            CliqueIndex(tmp_path / "idx")

    def test_truncated_file_rejected_at_open(self, tmp_path):
        build_index([frozenset({0, 1, 2}), frozenset({3, 4})], tmp_path / "idx")
        data = tmp_path / "idx" / "postings.dat"
        data.write_bytes(data.read_bytes()[:-2])
        with pytest.raises(StorageError, match="bytes"):
            CliqueIndex(tmp_path / "idx")


class TestSink:
    def test_sink_builds_on_close(self, tmp_path):
        with CliqueIndexSink(tmp_path / "idx") as sink:
            sink.accept(frozenset({0, 1, 2}))
            sink.accept(frozenset({2, 3}))
        assert sink.report.num_cliques == 2
        with CliqueIndex(tmp_path / "idx") as index:
            assert index.clique(0) == (0, 1, 2)

    def test_sink_matches_direct_build(self, tmp_path):
        cliques = [frozenset({0, 1, 2}), frozenset({2, 3})]
        build_index(cliques, tmp_path / "direct")
        sink = CliqueIndexSink(tmp_path / "sunk")
        for clique in cliques:
            sink.accept(clique)
        sink.close()
        assert _file_bytes(tmp_path / "direct") == _file_bytes(tmp_path / "sunk")

    def test_sink_tees_into_clique_file(self, tmp_path):
        tee = CliqueFileSink(tmp_path / "out.txt")
        with CliqueIndexSink(tmp_path / "idx", clique_file=tee) as sink:
            sink.accept(frozenset({0, 1}))
        assert (tmp_path / "out.txt").read_text() == "0 1\n"

    def test_exception_skips_commit(self, tmp_path):
        with pytest.raises(RuntimeError):
            with CliqueIndexSink(tmp_path / "idx") as sink:
                sink.accept(frozenset({0, 1}))
                raise RuntimeError("producer died")
        assert not (tmp_path / "idx" / MANIFEST_FILENAME).exists()

    def test_exception_aborts_tee_without_committing(self, tmp_path):
        tee = CliqueFileSink(tmp_path / "out.txt")
        with pytest.raises(RuntimeError):
            with CliqueIndexSink(tmp_path / "idx", clique_file=tee) as sink:
                sink.accept(frozenset({0, 1}))
                raise RuntimeError("producer died")
        assert not (tmp_path / "out.txt").exists()
        assert not (tmp_path / "out.txt.tmp").exists()

    def test_abort_discards_buffer(self, tmp_path):
        sink = CliqueIndexSink(tmp_path / "idx")
        sink.accept(frozenset({0, 1}))
        sink.abort()
        assert not (tmp_path / "idx" / MANIFEST_FILENAME).exists()
