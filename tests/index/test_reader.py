"""Query correctness, integrity auditing, and fault behaviour of CliqueIndex."""

import pytest

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import CorruptDataError, GraphError, StorageError
from repro.faults import FaultPlan, FaultRule
from repro.index import CliqueIndex, build_index
from repro.storage.iostats import IOStats

from tests.helpers import figure1_graph, seeded_gnp


@pytest.fixture()
def indexed(tmp_path):
    """A graph, its canonical clique list, and an open index over it."""
    graph = seeded_gnp(40, 0.3, seed=3)
    cliques = sorted(
        tuple(sorted(c)) for c in set(tomita_maximal_cliques(graph))
    )
    build_index(cliques, tmp_path / "idx")
    with CliqueIndex(tmp_path / "idx") as index:
        yield graph, cliques, index


class TestQueriesMatchBruteForce:
    def test_postings_for_every_vertex(self, indexed):
        graph, cliques, index = indexed
        for vertex in graph.vertices():
            expected = tuple(
                cid for cid, c in enumerate(cliques) if vertex in c
            )
            assert index.cliques_containing(vertex) == expected

    def test_absent_vertex_is_empty(self, indexed):
        _graph, _cliques, index = indexed
        assert index.cliques_containing(10_000) == ()

    def test_edge_queries(self, indexed):
        graph, cliques, index = indexed
        for u, v in list(graph.edges())[:50]:
            expected = tuple(
                cid for cid, c in enumerate(cliques) if u in c and v in c
            )
            assert index.cliques_containing_edge(u, v) == expected
            assert index.cliques_containing_edge(v, u) == expected

    def test_membership(self, indexed):
        _graph, cliques, index = indexed
        for cid, clique in enumerate(cliques):
            # A maximal clique's full vertex set belongs to exactly itself.
            assert index.membership(clique) == (cid,)
            # Any two of its vertices select every clique containing both.
            u, v = clique[0], clique[-1]
            if u != v:
                expected = tuple(
                    i for i, c in enumerate(cliques) if u in c and v in c
                )
                assert index.membership([u, v]) == expected

    def test_clique_and_size_lookup(self, indexed):
        _graph, cliques, index = indexed
        for cid, clique in enumerate(cliques):
            assert index.clique(cid) == clique
            assert index.clique_size(cid) == len(clique)

    def test_top_k_largest(self, indexed):
        _graph, cliques, index = indexed
        for k in (1, 3, len(cliques), len(cliques) + 10):
            expected = sorted(cliques, key=lambda c: (-len(c), c))[:k]
            assert index.top_k_largest(k) == expected

    def test_scan_matches_canonical_order(self, indexed):
        _graph, cliques, index = indexed
        assert list(index.scan_cliques()) == list(enumerate(cliques))

    def test_stats(self, indexed):
        _graph, cliques, index = indexed
        stats = index.stats()
        assert stats["num_cliques"] == len(cliques)
        assert stats["max_clique_size"] == max(len(c) for c in cliques)
        assert stats["num_postings"] == sum(len(c) for c in cliques)
        histogram = stats["size_histogram"]
        assert sum(histogram.values()) == len(cliques)

    def test_figure1(self, tmp_path):
        graph = figure1_graph()
        cliques = sorted(
            tuple(sorted(c)) for c in set(tomita_maximal_cliques(graph))
        )
        build_index(cliques, tmp_path / "idx")
        with CliqueIndex(tmp_path / "idx") as index:
            # abcwx is the unique maximum clique of Figure 1.
            assert len(index.top_k_largest(1)[0]) == 5


class TestArgumentValidation:
    def test_clique_id_out_of_range(self, indexed):
        _graph, cliques, index = indexed
        with pytest.raises(GraphError):
            index.clique(len(cliques))
        with pytest.raises(GraphError):
            index.clique(-1)
        with pytest.raises(GraphError):
            index.clique_size(len(cliques))

    def test_edge_same_endpoint_rejected(self, indexed):
        _graph, _cliques, index = indexed
        with pytest.raises(GraphError):
            index.cliques_containing_edge(3, 3)

    def test_membership_empty_rejected(self, indexed):
        _graph, _cliques, index = indexed
        with pytest.raises(GraphError):
            index.membership([])

    def test_top_k_nonpositive_rejected(self, indexed):
        _graph, _cliques, index = indexed
        with pytest.raises(GraphError):
            index.top_k_largest(0)


class TestIntegrity:
    def test_verify_clean_index(self, indexed):
        _graph, cliques, index = indexed
        summary = index.verify()
        assert summary["records_verified"] == len(cliques)
        assert summary["postings_verified"] == sum(len(c) for c in cliques)

    @pytest.mark.parametrize(
        "victim", ["cliques.dat", "cliques.idx", "postings.dat", "postings.dir"]
    )
    def test_verify_detects_any_flipped_byte(self, tmp_path, victim):
        build_index(
            [frozenset({0, 1, 2}), frozenset({2, 3, 4})], tmp_path / "idx"
        )
        path = tmp_path / "idx" / victim
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        with CliqueIndex(tmp_path / "idx") as index:
            with pytest.raises(CorruptDataError):
                index.verify()

    def test_corrupt_postings_surface_on_query(self, tmp_path):
        build_index(
            [frozenset({0, 1, 2}), frozenset({2, 3, 4})], tmp_path / "idx"
        )
        path = tmp_path / "idx" / "postings.dat"
        data = bytearray(path.read_bytes())
        data[-2] ^= 0xFF  # inside the last list's payload or CRC
        path.write_bytes(bytes(data))
        with CliqueIndex(tmp_path / "idx") as index:
            with pytest.raises(CorruptDataError):
                for v in range(5):
                    index.postings(v)


class TestFaultsAndMetering:
    def test_injected_read_fault_surfaces_typed(self, tmp_path):
        build_index([frozenset({0, 1, 2})], tmp_path / "idx")
        plan = FaultPlan(
            [FaultRule(operation="pool_read", kind="io_error",
                       path_contains="postings.dat")],
            seed=5,
        )
        with CliqueIndex(tmp_path / "idx", fault_plan=plan) as index:
            with pytest.raises(StorageError):
                index.postings(0)
            # The rule's budget (max_firings=1) is spent: retry succeeds.
            assert index.postings(0) == (0,)

    def test_io_is_metered(self, tmp_path):
        build_index([frozenset({0, 1, 2})], tmp_path / "idx")
        io = IOStats()
        with CliqueIndex(tmp_path / "idx", io_stats=io) as index:
            index.postings(1)
            index.clique(0)
        assert io.pages_read > 0

    def test_open_does_not_prewarm_page_caches(self, tmp_path):
        """Open-time magic checks must bypass the pools, or a small index
        gets fully cached at open and query-time fault tests go dark."""
        build_index([frozenset({0, 1, 2})], tmp_path / "idx"
        )
        plan = FaultPlan(
            [FaultRule(operation="pool_read", kind="io_error",
                       path_contains="postings.dat")],
            seed=5,
        )
        index = CliqueIndex(tmp_path / "idx", fault_plan=plan)
        try:
            with pytest.raises(StorageError):
                index.postings(0)  # first pool read: the fault must fire here
        finally:
            index.close()
