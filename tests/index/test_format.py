"""Codec tests for the index binary layouts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptDataError, StorageFormatError
from repro.index.format import (
    check_magic,
    decode_clique_record,
    decode_delta_list,
    decode_postings,
    decode_varint,
    encode_clique_record,
    encode_delta_list,
    encode_postings,
    encode_varint,
)


class TestVarint:
    @given(st.integers(min_value=0, max_value=2**63))
    def test_roundtrip(self, value):
        decoded, end = decode_varint(encode_varint(value))
        assert decoded == value
        assert end == len(encode_varint(value))

    def test_single_byte_values(self):
        for value in (0, 1, 127):
            assert len(encode_varint(value)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(StorageFormatError):
            encode_varint(-1)

    def test_truncated_raises(self):
        encoded = encode_varint(300)
        with pytest.raises(StorageFormatError, match="truncated"):
            decode_varint(encoded[:-1])

    def test_empty_buffer_raises(self):
        with pytest.raises(StorageFormatError, match="truncated"):
            decode_varint(b"")


class TestDeltaList:
    @settings(max_examples=60)
    @given(st.lists(st.integers(min_value=0, max_value=10**9), unique=True))
    def test_roundtrip(self, values):
        ordered = sorted(values)
        encoded = encode_delta_list(ordered)
        decoded, end = decode_delta_list(encoded, len(ordered))
        assert list(decoded) == ordered
        assert end == len(encoded)

    def test_non_ascending_rejected(self):
        with pytest.raises(StorageFormatError, match="ascending"):
            encode_delta_list([3, 3])
        with pytest.raises(StorageFormatError, match="ascending"):
            encode_delta_list([5, 2])

    def test_dense_run_encodes_one_byte_per_gap(self):
        # 1000 consecutive ids: first varint + 999 single-byte deltas.
        encoded = encode_delta_list(list(range(5000, 6000)))
        assert len(encoded) == len(encode_varint(5000)) + 999


class TestCliqueRecord:
    @settings(max_examples=60)
    @given(st.sets(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=40))
    def test_roundtrip(self, vertices):
        ordered = tuple(sorted(vertices))
        encoded = encode_clique_record(ordered)
        decoded, end = decode_clique_record(encoded)
        assert decoded == ordered
        assert end == len(encoded)

    def test_empty_clique_rejected(self):
        with pytest.raises(StorageFormatError):
            encode_clique_record(())

    def test_self_delimiting_in_a_stream(self):
        cliques = [(0, 1, 2), (1, 5), (7,), (2, 3, 9, 11)]
        stream = b"".join(encode_clique_record(c) for c in cliques)
        offset, decoded = 0, []
        while offset < len(stream):
            vertices, offset = decode_clique_record(stream, offset)
            decoded.append(vertices)
        assert decoded == cliques

    def test_flipped_byte_detected(self):
        encoded = bytearray(encode_clique_record((3, 8, 21)))
        for position in range(len(encoded)):
            damaged = bytearray(encoded)
            damaged[position] ^= 0xFF
            with pytest.raises((CorruptDataError, StorageFormatError)):
                decode_clique_record(bytes(damaged))

    def test_verify_false_skips_crc(self):
        encoded = bytearray(encode_clique_record((3, 8, 21)))
        encoded[-1] ^= 0xFF  # damage only the checksum bytes
        vertices, _ = decode_clique_record(bytes(encoded), verify=False)
        assert vertices == (3, 8, 21)


class TestPostings:
    @settings(max_examples=60)
    @given(st.sets(st.integers(min_value=0, max_value=10**6), max_size=200))
    def test_roundtrip(self, ids):
        ordered = tuple(sorted(ids))
        encoded = encode_postings(ordered)
        decoded, end = decode_postings(encoded)
        assert decoded == ordered
        assert end == len(encoded)

    def test_empty_postings_roundtrip(self):
        decoded, _ = decode_postings(encode_postings(()))
        assert decoded == ()

    def test_corruption_detected(self):
        encoded = bytearray(encode_postings((1, 4, 9)))
        encoded[1] ^= 0x55
        with pytest.raises((CorruptDataError, StorageFormatError)):
            decode_postings(bytes(encoded))


class TestMagic:
    def test_accepts_match(self):
        check_magic(b"RPXCLQ1\nrest", b"RPXCLQ1\n", "cliques.dat")

    def test_rejects_mismatch(self):
        with pytest.raises(StorageFormatError, match="cliques.dat"):
            check_magic(b"GARBAGE!", b"RPXCLQ1\n", "cliques.dat")
