"""Staleness marking and the dynamic-maintainer invalidation hook."""

from repro.dynamic.maintainer import HStarMaintainer
from repro.graph.adjacency import AdjacencyGraph
from repro.index import CliqueIndex, build_index


def _open(tmp_path):
    build_index(
        [frozenset({0, 1, 2}), frozenset({2, 3}), frozenset({4, 5})],
        tmp_path / "idx",
    )
    return CliqueIndex(tmp_path / "idx")


class TestStaleFlags:
    def test_fresh_index_has_no_stale_vertices(self, tmp_path):
        with _open(tmp_path) as index:
            assert index.stale_vertices == frozenset()
            assert not index.is_stale(0, 1, 2)

    def test_mark_and_clear(self, tmp_path):
        with _open(tmp_path) as index:
            index.mark_stale(1, 3)
            assert index.is_stale(1)
            assert index.is_stale(0, 3)  # any-of semantics
            assert not index.is_stale(4)
            assert index.stale_vertices == frozenset({1, 3})
            assert index.stats()["stale_vertices"] == 2
            index.clear_stale()
            assert index.stale_vertices == frozenset()

    def test_queries_still_answer_when_stale(self, tmp_path):
        with _open(tmp_path) as index:
            index.mark_stale(2)
            assert index.cliques_containing(2) == (0, 1)


class TestMaintainerHook:
    def test_insert_marks_both_endpoints(self, tmp_path):
        with _open(tmp_path) as index:
            maintainer = HStarMaintainer(
                AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            )
            maintainer.register_update_hook(index.invalidation_hook())
            maintainer.insert_edge(3, 4)
            assert index.is_stale(3)
            assert index.is_stale(4)
            assert not index.is_stale(0)

    def test_delete_marks_both_endpoints(self, tmp_path):
        with _open(tmp_path) as index:
            maintainer = HStarMaintainer(
                AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            )
            maintainer.register_update_hook(index.invalidation_hook())
            maintainer.delete_edge(2, 3)
            assert index.stale_vertices == frozenset({2, 3})

    def test_batch_insert_marks_every_applied_edge(self, tmp_path):
        with _open(tmp_path) as index:
            maintainer = HStarMaintainer(
                AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
            )
            maintainer.register_update_hook(index.invalidation_hook())
            maintainer.insert_batch([(3, 4), (4, 5)])
            assert index.stale_vertices == frozenset({3, 4, 5})

    def test_duplicate_insert_does_not_mark(self, tmp_path):
        """Hooks fire only for edges actually applied to the graph."""
        with _open(tmp_path) as index:
            maintainer = HStarMaintainer(
                AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
            )
            maintainer.register_update_hook(index.invalidation_hook())
            maintainer.insert_edge(0, 1)  # already present
            assert index.stale_vertices == frozenset()
