"""Smoke tests for the experiment harness on the smallest dataset.

The full experiment runs live in ``benchmarks/``; here each module is
exercised end-to-end on ``protein`` (and reduced parameters) so harness
regressions surface in the unit suite.
"""


from repro.experiments import figure3, table2, table3, table4, table5, table6, table7


SMALL = ("protein",)


class TestTable2:
    def test_rows_and_render(self):
        rows = table2.run(SMALL)
        assert len(rows) == 1
        row = rows[0]
        assert row.dataset == "protein"
        assert row.num_vertices == 2000
        assert row.storage_mb > 0
        assert "Table 2" in table2.render(rows)


class TestTable3:
    def test_extraction_cost_measured(self):
        rows = table3.run(SMALL)
        row = rows[0]
        assert row.total_seconds > 0
        assert row.disk_read_seconds > 0
        assert row.memory_mb > 0
        assert row.h > 0
        assert "Table 3" in table3.render(rows)


class TestTable4:
    def test_size_ordering(self):
        rows = table4.run(SMALL)
        sizes = rows[0].sizes
        assert sizes.core_graph_edges <= sizes.star_graph_edges
        assert sizes.star_graph_edges <= sizes.extended_graph_edges
        assert rows[0].rank_exponent < 0
        assert "Table 4" in table4.render(rows)


class TestTable5:
    def test_columns_present(self):
        rows = table5.run(SMALL, closeness_sample=4, estimator_probes=16)
        row = rows[0]
        assert row.closeness > 0
        assert 0 < row.reachability <= 1
        assert row.cliques.containing_core <= row.cliques.total
        assert row.estimate_ratio > 0
        assert row.backtrack_nodes >= row.tree_nodes
        assert "Table 5" in table5.render(rows)


class TestFigure3:
    def test_all_three_algorithms_on_protein(self):
        rows = figure3.run(SMALL)
        by_algo = {row.algorithm: row for row in rows}
        assert by_algo["ExtMCE"].status == "ok"
        assert by_algo["in-mem"].status == "ok"
        assert by_algo["streaming"].status == "ok"
        assert (
            by_algo["ExtMCE"].cliques
            == by_algo["in-mem"].cliques
            == by_algo["streaming"].cliques
        )
        assert "Figure 3" in figure3.render(rows)

    def test_extmce_uses_less_memory_than_inmem(self):
        rows = figure3.run(SMALL)
        by_algo = {row.algorithm: row for row in rows}
        assert by_algo["ExtMCE"].peak_memory_mb < by_algo["in-mem"].peak_memory_mb

    def test_inmem_out_of_memory_under_tiny_budget(self):
        rows = figure3.run(SMALL, budget_units=500)
        by_algo = {row.algorithm: row for row in rows}
        assert by_algo["in-mem"].status == "out of memory"


class TestTable6:
    def test_recursion_report(self):
        rows = table6.run(SMALL)
        row = rows[0]
        assert row.recursions >= 1
        assert row.estimated_recursions > 0
        assert 0 <= row.first_step_fraction <= 1
        assert "Table 6" in table6.render(rows)


class TestTable7:
    def test_periods_measured_without_full_runs(self):
        rows = table7.run(dataset="protein", num_periods=3, compute_full=False)
        assert len(rows) == 3
        assert all(row.updates_in_graph > 0 for row in rows)
        assert all(0 <= row.h_vertices_retained <= 1 for row in rows)
        assert "Table 7" in table7.render(rows)

    def test_full_recompute_columns(self):
        rows = table7.run(dataset="protein", num_periods=2, compute_full=True)
        assert all(row.seconds_with_tree > 0 for row in rows)
        assert all(row.seconds_without_tree > 0 for row in rows)


class TestSection32:
    def test_small_case(self):
        from repro.experiments import section32

        rows = section32.run(cases=((-0.75, 1500),))
        row = rows[0]
        assert abs(row.measured_h - row.predicted_h) <= max(2, 0.1 * row.predicted_h)
        assert "Section 3.2" in section32.render(rows)


class TestRunner:
    def test_main_runs_selected_modules(self, capsys):
        from repro.experiments.__main__ import main as runner

        assert runner(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_main_lists_available_on_error(self, capsys):
        from repro.experiments.__main__ import main as runner

        assert runner(["bogus"]) == 2
        err = capsys.readouterr().err
        assert "available:" in err
