"""The reduction axis of the differential matrix.

Reduction changes what the engine *sees* (a peeled/folded graph) but
must never change what the consumer *gets*: for every kernel × workers
× reduction combination the delivered clique stream is the same set of
maximal cliques, and each run's metrics reconcile with its own stream
through the reduce counters.  Two extra properties pin the semantics:

* within one reduction level the stream is deterministic across kernels
  and worker counts, element by element;
* with ``reduction="off"`` the stream is *byte-identical* to the
  historical reference, so the new axis is provably a no-op when
  disabled.
"""

from __future__ import annotations

import pytest

from repro.core.result import render_clique_lines
from repro.generators import fringed_clique_communities
from tests.differential.harness import (
    assert_stream_metrics_consistent,
    run_enumeration,
)

MATRIX = [
    pytest.param(kernel, workers, reduction,
                 id=f"{kernel}-w{workers}-{reduction}")
    for kernel in ("set", "bitset")
    for workers in (1, 2, 4)
    for reduction in ("off", "prune", "full")
]


def _graph():
    # Dense near-clique communities with a peelable preferential fringe:
    # both rules fire, and the reduced graph still drives a multi-step
    # H*-recursion (so reduction composes with checkpoint-bearing steps).
    return fringed_clique_communities(
        220, seed=5, core_fraction=0.7,
        community_min=14, community_max=20, defects=5,
    )


def canonical(stream) -> bytes:
    return render_clique_lines(sorted(stream)).encode("ascii")


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The baseline stream: set kernel, serial, reduction off."""
    result = run_enumeration(
        _graph(), tmp_path_factory.mktemp("reference"),
        kernel="set", workers=1, reduction="off",
    )
    assert result.stream, "reference enumeration produced nothing"
    return result


@pytest.fixture(scope="module")
def per_level_streams():
    """Collected streams per reduction level, for within-level determinism."""
    return {}


class TestReductionMatrix:
    @pytest.mark.parametrize("kernel, workers, reduction", MATRIX)
    def test_same_cliques_and_consistent_metrics(
        self, kernel, workers, reduction, reference, per_level_streams, tmp_path
    ):
        result = run_enumeration(
            _graph(), tmp_path,
            kernel=kernel, workers=workers, reduction=reduction,
        )
        if reduction == "off":
            # The new axis defaults to a provable no-op.
            assert result.stream == reference.stream
            assert result.canonical_bytes == reference.canonical_bytes
        else:
            # Reduction reorders (direct emissions come first) but must
            # deliver exactly the same set of maximal cliques.
            assert len(result.stream) == len(set(result.stream))
            assert canonical(result.stream) == canonical(reference.stream)
        # Within one level, the stream order is deterministic across
        # kernels and worker counts.
        previous = per_level_streams.setdefault(reduction, result.stream)
        assert result.stream == previous
        assert_stream_metrics_consistent(result)

    @pytest.mark.parametrize("kernel, workers, reduction", MATRIX)
    def test_reduce_counters_reconcile(
        self, kernel, workers, reduction, reference, tmp_path
    ):
        result = run_enumeration(
            _graph(), tmp_path,
            kernel=kernel, workers=workers, reduction=reduction,
        )
        direct = result.counter("repro_reduce_cliques_direct_total")
        suppressed = result.counter("repro_reduce_cliques_suppressed_total")
        removed = result.counter("repro_reduce_vertices_removed_total")
        if reduction == "off":
            assert direct == suppressed == removed == 0
        else:
            # The benchmark graph is built so both counters are live.
            assert direct > 0
            assert removed > 0
            assert result.counter("repro_reduce_runs_total") == 1
        assert (
            result.counter("repro_mce_cliques_emitted_total")
            + direct - suppressed
            == len(result.stream)
        )
        # Whatever the engine saw, the consumer got the reference count.
        assert len(result.stream) == len(reference.stream)
