"""Golden-stream regression fixture.

``data/golden_graph.txt`` is a committed 120-vertex/354-edge power-law
graph; the SHA-256 below is the digest of the canonical clique report
ExtMCE must produce for it, forever.  Any change to the enumeration
pipeline that alters the stream — its *content*, not just its order —
trips this test before it trips a human.

Alongside the byte digest, the schema checks pin the *shape* of the two
observability artifacts (trace events and the metrics snapshot): removing
or renaming a key that downstream tooling reads is a breaking change and
must be a conscious one.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.graph.adjacency import AdjacencyGraph
from repro.metrics import SNAPSHOT_SCHEMA, metric_names
from repro.storage.edgelist import read_edge_list
from repro.telemetry import load_trace
from tests.differential.harness import (
    assert_stream_metrics_consistent,
    run_enumeration,
)

DATA = Path(__file__).parent / "data" / "golden_graph.txt"

#: SHA-256 of the committed edge-list file itself — a corrupted or
#: regenerated fixture should fail loudly, not produce confusing digests.
GOLDEN_GRAPH_SHA256 = (
    "cab79fdf96e3e559c79242b119b4a649aa2e62ca6a2f4181a92c7028b55418ed"
)

#: SHA-256 of the canonical clique report (one sorted clique per line,
#: lexicographic order) for the golden graph: 202 maximal cliques.
GOLDEN_STREAM_SHA256 = (
    "fcf7139fc07a27d9d5a36a30142cf8d72b2e4bad4d342f3dc9fb6692f1b63ac0"
)

GOLDEN_CLIQUE_COUNT = 202

#: Metric families every instrumented run must expose.  New families may
#: be added freely; removing one breaks dashboards and this test.
REQUIRED_METRICS = {
    "repro_kernel_cliques_total",
    "repro_kernel_subproblem_size",
    "repro_kernel_subproblems_total",
    "repro_mce_category_cliques_total",
    "repro_mce_cliques_emitted_total",
    "repro_mce_cliques_suppressed_total",
    "repro_mce_hashtable_entries",
    "repro_mce_phase_seconds",
    "repro_mce_singleton_cliques_total",
    "repro_mce_steps_total",
    "repro_storage_bytes_read_total",
    "repro_storage_bytes_written_total",
    "repro_storage_checksum_failures_total",
    "repro_storage_pages_read_total",
    "repro_storage_pages_written_total",
    "repro_storage_records_verified_total",
    "repro_storage_sequential_scans_total",
    "repro_tree_builds_total",
    "repro_tree_cliques_total",
    "repro_tree_nodes_total",
}

#: Keys every ``step_completed`` trace event must carry.
STEP_EVENT_KEYS = {
    "seq", "elapsed", "event", "step", "core_size", "periphery_size",
    "star_edges", "tree_nodes", "tree_estimate", "emitted", "suppressed",
    "hashtable_entries",
}


def golden_graph() -> AdjacencyGraph:
    return AdjacencyGraph.from_edges(read_edge_list(DATA))


def test_fixture_file_unchanged():
    assert hashlib.sha256(DATA.read_bytes()).hexdigest() == GOLDEN_GRAPH_SHA256


@pytest.mark.parametrize("workers", [1, 2], ids=["serial", "workers2"])
def test_golden_stream_digest(workers, tmp_path):
    result = run_enumeration(
        golden_graph(), tmp_path, kernel="bitset", workers=workers
    )
    assert len(result.stream) == GOLDEN_CLIQUE_COUNT
    digest = hashlib.sha256(result.canonical_bytes).hexdigest()
    assert digest == GOLDEN_STREAM_SHA256
    assert_stream_metrics_consistent(result)


def test_metrics_snapshot_schema(tmp_path):
    result = run_enumeration(golden_graph(), tmp_path, workers=1)
    assert result.snapshot["schema"] == SNAPSHOT_SCHEMA
    missing = REQUIRED_METRICS - metric_names(result.snapshot)
    assert not missing, f"metric families removed: {sorted(missing)}"
    for entry in result.snapshot["metrics"]:
        assert {"name", "type", "help", "labels"} <= entry.keys()
        if entry["type"] == "histogram":
            assert {"buckets", "counts", "sum", "count"} <= entry.keys()
        else:
            assert "value" in entry


def test_trace_schema(tmp_path):
    run_enumeration(golden_graph(), tmp_path, workers=1, trace=True)
    events = load_trace(tmp_path / "trace.jsonl")
    kinds = [e["event"] for e in events]
    assert kinds[0] == "run_started"
    assert kinds[-1] == "run_completed"
    steps = [e for e in events if e["event"] == "step_completed"]
    assert steps, "no step_completed events"
    for event in steps:
        missing = STEP_EVENT_KEYS - event.keys()
        assert not missing, f"step_completed lost keys: {sorted(missing)}"
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
