"""The differential matrix: byte-identical streams across configurations.

The headline guarantee of this codebase — serial ExtMCE, every worker
count, both enumeration kernels, and both task grains produce *exactly*
the same clique stream — is asserted here as bytes, over the full
``kernel × workers × task_grain`` matrix (plus checksum-off variants),
together with the metrics invariants that tie each run's counters to
its own stream.  Grain matters because ``fine`` arms work stealing:
split chunks must still merge into the canonical order.
"""

from __future__ import annotations

import pytest

from repro.generators import defective_clique_communities, powerlaw_cluster_graph
from tests.differential.harness import (
    assert_stream_metrics_consistent,
    run_enumeration,
)
from tests.helpers import figure1_graph

MATRIX = [
    pytest.param(kernel, workers, grain, True,
                 id=f"{kernel}-w{workers}-{grain}-crc")
    for kernel in ("set", "bitset")
    for workers in (1, 2, 4)
    for grain in ("coarse", "fine")
] + [
    pytest.param(kernel, workers, "fine", False,
                 id=f"{kernel}-w{workers}-fine-nocrc")
    for kernel in ("set", "bitset")
    for workers in (1, 2, 4)
]


def _graph():
    return powerlaw_cluster_graph(140, 4, 0.6, seed=11)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The baseline stream: set kernel, serial, checksums on."""
    result = run_enumeration(
        _graph(), tmp_path_factory.mktemp("reference"),
        kernel="set", workers=1, verify_checksums=True,
    )
    assert result.stream, "reference enumeration produced nothing"
    return result


class TestStreamMatrix:
    @pytest.mark.parametrize("kernel, workers, grain, verify", MATRIX)
    def test_byte_identical_stream_and_consistent_metrics(
        self, kernel, workers, grain, verify, reference, tmp_path
    ):
        result = run_enumeration(
            _graph(), tmp_path,
            kernel=kernel, workers=workers, task_grain=grain,
            verify_checksums=verify,
        )
        # Stronger than canonical-bytes equality: the enumeration *order*
        # itself must match the reference, element by element.
        assert result.stream == reference.stream
        assert result.canonical_bytes == reference.canonical_bytes
        assert_stream_metrics_consistent(result)

    @pytest.mark.parametrize("kernel, workers, grain, verify", MATRIX)
    def test_driver_totals_invariant_across_matrix(
        self, kernel, workers, grain, verify, reference, tmp_path
    ):
        """Emitted/suppressed/category totals are configuration-independent.

        Kernel-level counters legitimately differ (the parallel drivers
        decompose into different subproblems); the driver-level totals
        may not.
        """
        result = run_enumeration(
            _graph(), tmp_path,
            kernel=kernel, workers=workers, task_grain=grain,
            verify_checksums=verify,
        )
        for name in (
            "repro_mce_cliques_emitted_total",
            "repro_mce_cliques_suppressed_total",
            "repro_mce_singleton_cliques_total",
            "repro_mce_category_cliques_total",
            "repro_mce_steps_total",
        ):
            assert result.counter(name) == reference.counter(name), name


class TestOtherTopologies:
    """One parallel-vs-serial pass each over structurally different graphs."""

    def test_figure1(self, tmp_path):
        graph = figure1_graph()
        serial = run_enumeration(graph, tmp_path / "serial", workers=1)
        parallel = run_enumeration(graph, tmp_path / "par", workers=2)
        assert serial.stream == parallel.stream
        assert_stream_metrics_consistent(serial)
        assert_stream_metrics_consistent(parallel)

    def test_communities_with_isolated_vertices(self, tmp_path):
        graph = defective_clique_communities(
            90, seed=5, community_min=20, community_max=30
        )
        # Isolated vertices exercise the degenerate singleton step.
        graph.add_vertex(10_000)
        graph.add_vertex(10_001)
        serial = run_enumeration(graph, tmp_path / "serial", workers=1)
        parallel = run_enumeration(
            graph, tmp_path / "par", workers=2, kernel="set"
        )
        assert serial.stream == parallel.stream
        assert frozenset((10_000,)) in serial.stream
        assert_stream_metrics_consistent(serial)
        assert_stream_metrics_consistent(parallel)

    def test_edgeless_graph_counts_singletons(self, tmp_path):
        """An all-isolated graph exercises the degenerate h=0 step."""
        from repro.graph.adjacency import AdjacencyGraph

        graph = AdjacencyGraph.from_edges([], vertices=range(7))
        result = run_enumeration(graph, tmp_path, workers=1)
        assert sorted(result.stream) == [frozenset((v,)) for v in range(7)]
        assert result.counter("repro_mce_singleton_cliques_total") == 7
        assert_stream_metrics_consistent(result)
