"""Shared driver for the differential suite.

One function, :func:`run_enumeration`, runs ExtMCE under any
kernel/workers/verify_checksums combination with a fresh metrics registry
and returns everything the differential assertions need: the raw clique
stream (enumeration order), its canonical byte rendering, and the final
metrics snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro import metrics
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.core.result import render_clique_lines
from repro.parallel import ParallelExtMCE
from repro.storage.diskgraph import DiskGraph

Clique = frozenset


@dataclass
class RunResult:
    """Everything one enumeration run produced."""

    stream: list[Clique]
    canonical_bytes: bytes
    snapshot: dict

    def counter(self, name: str) -> int | float:
        """Sum of ``name`` across label sets in this run's snapshot."""
        return metrics.counter_value(self.snapshot, name)


def run_enumeration(
    graph,
    workdir: str | Path,
    *,
    kernel: str = "bitset",
    workers: int = 1,
    task_grain: str = "fine",
    verify_checksums: bool = True,
    trace: bool = False,
    reduction: str = "off",
) -> RunResult:
    """Enumerate ``graph`` once under the given configuration.

    A fresh registry is installed for the run (and the previous one
    restored afterwards), so snapshot totals are per-run, not
    process-cumulative.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    previous = metrics.get_registry()
    metrics.set_registry(metrics.MetricsRegistry())
    try:
        disk = DiskGraph.create(
            workdir / "graph.bin", graph, verify_checksums=verify_checksums
        )
        config = ExtMCEConfig(
            workdir=workdir,
            workers=workers,
            task_grain=task_grain,
            kernel=kernel,
            reduction=reduction,
            verify_checksums=verify_checksums,
            metrics_path=workdir / "metrics.json",
            trace_path=workdir / "trace.jsonl" if trace else None,
        )
        driver_cls = ParallelExtMCE if workers > 1 else ExtMCE
        stream = list(driver_cls(disk, config).enumerate_cliques())
        snapshot = metrics.load_snapshot(workdir / "metrics.json")
    finally:
        metrics.set_registry(previous)
    return RunResult(
        stream=stream,
        canonical_bytes=render_clique_lines(stream).encode("ascii"),
        snapshot=snapshot,
    )


def assert_stream_metrics_consistent(result: RunResult) -> None:
    """The driver-counter invariants every configuration must satisfy.

    With reduction enabled the engine enumerates the *reduced* graph, so
    its own emitted total reconciles with the delivered stream through
    the reconstruction counters: direct emissions are added by the map,
    non-maximal lifts are dropped by the suppression set.  With
    reduction off both reduce counters are zero and the relation
    collapses to the historical ``emitted == len(stream)``.
    """
    emitted = result.counter("repro_mce_cliques_emitted_total")
    suppressed = result.counter("repro_mce_cliques_suppressed_total")
    singletons = result.counter("repro_mce_singleton_cliques_total")
    categories = result.counter("repro_mce_category_cliques_total")
    reduce_direct = result.counter("repro_reduce_cliques_direct_total")
    reduce_suppressed = result.counter("repro_reduce_cliques_suppressed_total")
    assert emitted + reduce_direct - reduce_suppressed == len(result.stream)
    assert categories == emitted + suppressed - singletons
    # A reduction can peel the graph away entirely; only a run whose
    # engine actually emitted something must have recursed.
    if emitted > 0:
        assert result.counter("repro_mce_steps_total") >= 1
