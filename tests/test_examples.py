"""Smoke tests: every example script runs to completion.

Each example is executed in-process (importing its ``main``) with stdout
captured, so the documented entry points can never silently rot.
"""

import importlib.util
import io
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


def test_examples_discovered():
    assert len(EXAMPLES) >= 6
    assert "quickstart" in EXAMPLES


def test_quickstart():
    out = run_example("quickstart")
    assert "maximal cliques" in out
    assert "matches the in-memory Tomita enumeration: OK" in out


def test_protein_complexes():
    out = run_example("protein_complexes")
    assert "candidate complexes" in out
    assert "hub protein" in out


def test_dynamic_maintenance():
    out = run_example("dynamic_maintenance")
    assert "on-demand full enumeration" in out
    assert "core hits" in out


@pytest.mark.slow
def test_social_network_analysis():
    out = run_example("social_network_analysis")
    assert "core closeness" in out
    assert "communities" in out


@pytest.mark.slow
def test_community_detection():
    out = run_example("community_detection")
    assert "clique-percolation communities" in out


@pytest.mark.slow
def test_memory_budget():
    out = run_example("memory_budget")
    assert "OUT OF MEMORY" in out
    assert "completed:" in out


def test_external_pipeline():
    out = run_example("external_pipeline")
    assert "verification    : OK" in out
    assert "Trace summary" in out
