"""Tests for the JSONL telemetry writer/reader and ExtMCE tracing."""

import json

import pytest

from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.errors import StorageError
from repro.storage.diskgraph import DiskGraph
from repro.telemetry import TraceWriter, load_trace, summarize_trace

from tests.helpers import seeded_gnp


class TestWriterReader:
    def test_events_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("alpha", value=1)
            trace.emit("beta", nested={"x": [1, 2]})
        events = load_trace(path)
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert events[0]["seq"] == 0 and events[1]["seq"] == 1
        assert events[1]["nested"] == {"x": [1, 2]}

    def test_elapsed_monotone(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            for i in range(5):
                trace.emit("tick", i=i)
        elapsed = [e["elapsed"] for e in load_trace(path)]
        assert elapsed == sorted(elapsed)

    def test_reopening_truncates_by_default(self, tmp_path):
        """Regression: the writer used to always append, so re-running with
        the same trace path silently concatenated two runs and broke the
        monotone-seq invariant."""
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("first")
        with TraceWriter(path) as trace:
            trace.emit("second")
        events = load_trace(path)
        assert [e["event"] for e in events] == ["second"]
        assert events[0]["seq"] == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_trace(tmp_path / "nope.jsonl")

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "ok", "seq": 0, "elapsed": 0}\nnot json\n')
        with pytest.raises(StorageError, match=":2"):
            load_trace(path)

    def test_close_idempotent(self, tmp_path):
        trace = TraceWriter(tmp_path / "t.jsonl")
        trace.close()
        trace.close()


class TestTraceModes:
    def test_append_continues_seq(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("first")
            trace.emit("second")
        with TraceWriter(path, mode="append") as trace:
            trace.emit("third")
        events = load_trace(path)
        assert [e["event"] for e in events] == ["first", "second", "third"]
        assert [e["seq"] for e in events] == [0, 1, 2]

    def test_append_tolerates_torn_final_line(self, tmp_path):
        """A crash mid-emit leaves a partial line; resume must still work."""
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("first")
        with open(path, "a", encoding="ascii") as handle:
            handle.write('{"event": "torn", "se')
        with TraceWriter(path, mode="append") as trace:
            trace.emit("second")
        # The torn line is still unreadable for load_trace, but the new
        # event landed with the right continuation seq.
        tail = json.loads(path.read_text().splitlines()[-1])
        assert tail["event"] == "second"
        assert tail["seq"] == 1

    def test_append_on_missing_file_starts_fresh(self, tmp_path):
        with TraceWriter(tmp_path / "t.jsonl", mode="append") as trace:
            trace.emit("only")
        assert load_trace(tmp_path / "t.jsonl")[0]["seq"] == 0

    def test_rotate_preserves_previous_run(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("old")
        with TraceWriter(path, mode="rotate") as trace:
            trace.emit("new")
        assert [e["event"] for e in load_trace(path)] == ["new"]
        rotated = load_trace(tmp_path / "t.jsonl.1")
        assert [e["event"] for e in rotated] == ["old"]

    def test_rotate_replaces_earlier_rotation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for name in ("a", "b", "c"):
            with TraceWriter(path, mode="rotate") as trace:
                trace.emit(name)
        assert [e["event"] for e in load_trace(path)] == ["c"]
        assert [e["event"] for e in load_trace(tmp_path / "t.jsonl.1")] == ["b"]

    def test_rotate_without_existing_file(self, tmp_path):
        with TraceWriter(tmp_path / "t.jsonl", mode="rotate") as trace:
            trace.emit("only")
        assert not (tmp_path / "t.jsonl.1").exists()

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace mode"):
            TraceWriter(tmp_path / "t.jsonl", mode="overwrite")

    def test_resumed_run_appends_to_trace(self, tmp_path):
        """ExtMCE.resume must continue the interrupted run's trace file,
        not truncate it."""
        g = seeded_gnp(60, 0.2, seed=4)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        workdir = tmp_path / "w"
        trace_path = tmp_path / "run.jsonl"
        config = ExtMCEConfig(
            workdir=workdir, trace_path=trace_path, checkpoint=True
        )
        algo = ExtMCE(disk, config)
        stream = algo.enumerate_cliques()
        # Interrupt once the first step's checkpoint has been written
        # (cliques flow before the step's checkpoint, so run until the
        # file appears).
        from repro.core.checkpoint import CHECKPOINT_FILENAME

        for _ in stream:
            if (workdir / CHECKPOINT_FILENAME).exists():
                break
        stream.close()
        first_events = load_trace(trace_path)
        resumed = ExtMCE.resume(
            workdir, config=ExtMCEConfig(trace_path=trace_path)
        )
        list(resumed.enumerate_cliques())
        events = load_trace(trace_path)
        assert len(events) > len(first_events)
        assert events[: len(first_events)] == first_events
        starts = [e for e in events if e["event"] == "run_started"]
        assert len(starts) == 2
        assert starts[1]["resumed_from_step"] >= 1
        seqs = [e["seq"] for e in events]
        assert seqs == list(range(len(events)))


class TestExtMCETracing:
    def run_traced(self, tmp_path):
        g = seeded_gnp(50, 0.2, seed=2)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        trace_path = tmp_path / "run.jsonl"
        config = ExtMCEConfig(workdir=tmp_path / "w", trace_path=trace_path)
        algo = ExtMCE(disk, config)
        count = sum(1 for _ in algo.enumerate_cliques())
        return count, algo, load_trace(trace_path)

    def test_run_bracketed_by_start_and_completion(self, tmp_path):
        _, _, events = self.run_traced(tmp_path)
        assert events[0]["event"] == "run_started"
        assert events[-1]["event"] == "run_completed"

    def test_one_step_event_per_recursion(self, tmp_path):
        _, algo, events = self.run_traced(tmp_path)
        steps = [e for e in events if e["event"] == "step_completed"]
        assert len(steps) == algo.report.num_recursions

    def test_emitted_counts_sum_to_total(self, tmp_path):
        count, _, events = self.run_traced(tmp_path)
        steps = [e for e in events if e["event"] == "step_completed"]
        assert sum(e["emitted"] for e in steps) == count

    def test_summary_renders(self, tmp_path):
        count, _, events = self.run_traced(tmp_path)
        text = summarize_trace(events)
        assert "Trace summary" in text
        assert f"{count} cliques" in text

    def test_checkpoint_events_present_when_enabled(self, tmp_path):
        g = seeded_gnp(50, 0.2, seed=2)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        config = ExtMCEConfig(
            workdir=tmp_path / "w",
            trace_path=tmp_path / "run.jsonl",
            checkpoint=True,
        )
        algo = ExtMCE(disk, config)
        list(algo.enumerate_cliques())
        events = load_trace(tmp_path / "run.jsonl")
        checkpoints = [e for e in events if e["event"] == "checkpoint_written"]
        assert len(checkpoints) == algo.report.num_recursions
