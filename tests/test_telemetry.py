"""Tests for the JSONL telemetry writer/reader and ExtMCE tracing."""

import json

import pytest

from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.errors import StorageError
from repro.storage.diskgraph import DiskGraph
from repro.telemetry import TraceWriter, load_trace, summarize_trace

from tests.helpers import seeded_gnp


class TestWriterReader:
    def test_events_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("alpha", value=1)
            trace.emit("beta", nested={"x": [1, 2]})
        events = load_trace(path)
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert events[0]["seq"] == 0 and events[1]["seq"] == 1
        assert events[1]["nested"] == {"x": [1, 2]}

    def test_elapsed_monotone(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            for i in range(5):
                trace.emit("tick", i=i)
        elapsed = [e["elapsed"] for e in load_trace(path)]
        assert elapsed == sorted(elapsed)

    def test_append_mode_across_writers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("first")
        with TraceWriter(path) as trace:
            trace.emit("second")
        assert [e["event"] for e in load_trace(path)] == ["first", "second"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_trace(tmp_path / "nope.jsonl")

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "ok", "seq": 0, "elapsed": 0}\nnot json\n')
        with pytest.raises(StorageError, match=":2"):
            load_trace(path)

    def test_close_idempotent(self, tmp_path):
        trace = TraceWriter(tmp_path / "t.jsonl")
        trace.close()
        trace.close()


class TestExtMCETracing:
    def run_traced(self, tmp_path):
        g = seeded_gnp(50, 0.2, seed=2)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        trace_path = tmp_path / "run.jsonl"
        config = ExtMCEConfig(workdir=tmp_path / "w", trace_path=trace_path)
        algo = ExtMCE(disk, config)
        count = sum(1 for _ in algo.enumerate_cliques())
        return count, algo, load_trace(trace_path)

    def test_run_bracketed_by_start_and_completion(self, tmp_path):
        _, _, events = self.run_traced(tmp_path)
        assert events[0]["event"] == "run_started"
        assert events[-1]["event"] == "run_completed"

    def test_one_step_event_per_recursion(self, tmp_path):
        _, algo, events = self.run_traced(tmp_path)
        steps = [e for e in events if e["event"] == "step_completed"]
        assert len(steps) == algo.report.num_recursions

    def test_emitted_counts_sum_to_total(self, tmp_path):
        count, _, events = self.run_traced(tmp_path)
        steps = [e for e in events if e["event"] == "step_completed"]
        assert sum(e["emitted"] for e in steps) == count

    def test_summary_renders(self, tmp_path):
        count, _, events = self.run_traced(tmp_path)
        text = summarize_trace(events)
        assert "Trace summary" in text
        assert f"{count} cliques" in text

    def test_checkpoint_events_present_when_enabled(self, tmp_path):
        g = seeded_gnp(50, 0.2, seed=2)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        config = ExtMCEConfig(
            workdir=tmp_path / "w",
            trace_path=tmp_path / "run.jsonl",
            checkpoint=True,
        )
        algo = ExtMCE(disk, config)
        list(algo.enumerate_cliques())
        events = load_trace(tmp_path / "run.jsonl")
        checkpoints = [e for e in events if e["event"] == "checkpoint_written"]
        assert len(checkpoints) == algo.report.num_recursions
