"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from tests.helpers import figure1_graph, seeded_gnp


@pytest.fixture
def figure1():
    """The paper's Figure 1 example graph (13 vertices, 25 edges)."""
    return figure1_graph()


@pytest.fixture
def triangle_plus_tail():
    """A triangle {0,1,2} with a pendant edge (2,3)."""
    from repro.graph.adjacency import AdjacencyGraph

    return AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])


@pytest.fixture
def medium_random():
    """A deterministic 60-vertex random graph with varied clique sizes."""
    return seeded_gnp(60, 0.15, seed=9)


@pytest.fixture
def live_metrics():
    """A fresh live metrics registry, restored to disabled afterwards.

    Tests that assert on metric totals need per-test isolation (the
    registry is process-wide and cumulative); everything else runs with
    metrics disabled, which doubles as a regression guard for the
    near-free null path.
    """
    from repro import metrics

    previous = metrics.get_registry()
    registry = metrics.MetricsRegistry()
    metrics.set_registry(registry)
    try:
        yield registry
    finally:
        metrics.set_registry(previous)
