"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from tests.helpers import figure1_graph, seeded_gnp


@pytest.fixture
def figure1():
    """The paper's Figure 1 example graph (13 vertices, 25 edges)."""
    return figure1_graph()


@pytest.fixture
def triangle_plus_tail():
    """A triangle {0,1,2} with a pendant edge (2,3)."""
    from repro.graph.adjacency import AdjacencyGraph

    return AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])


@pytest.fixture
def medium_random():
    """A deterministic 60-vertex random graph with varied clique sizes."""
    return seeded_gnp(60, 0.15, seed=9)
