"""Tests for the clique-stream consumers."""

import pytest
from hypothesis import given, settings

from repro.applications.cliques import k_clique_communities, maximum_clique, top_k_cliques
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph

from tests.helpers import seeded_gnp, small_graphs


def fs(*members):
    return frozenset(members)


class TestMaximumClique:
    def test_figure1(self, figure1):
        best = maximum_clique(tomita_maximal_cliques(figure1))
        assert len(best) == 5  # abcwx

    def test_tiebreak_smallest_ids(self):
        cliques = [fs(5, 6), fs(1, 2)]
        assert maximum_clique(cliques) == fs(1, 2)

    def test_empty_stream_raises(self):
        with pytest.raises(GraphError):
            maximum_clique([])


class TestTopK:
    def test_ordering_and_truncation(self):
        cliques = [fs(1), fs(2, 3), fs(4, 5, 6), fs(7, 8)]
        top = top_k_cliques(cliques, 2)
        assert top[0] == fs(4, 5, 6)
        assert len(top) == 2
        assert all(len(c) == 2 for c in top[1:])

    def test_k_larger_than_stream(self):
        cliques = [fs(1, 2)]
        assert top_k_cliques(cliques, 10) == [fs(1, 2)]

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            top_k_cliques([], 0)

    def test_matches_full_sort(self):
        g = seeded_gnp(40, 0.3, seed=6)
        cliques = list(tomita_maximal_cliques(g))
        top = top_k_cliques(cliques, 5)
        expected_sizes = sorted((len(c) for c in cliques), reverse=True)[:5]
        assert [len(c) for c in top] == expected_sizes

    def test_streaming_from_extmce(self, tmp_path):
        from repro.core.extmce import ExtMCE, ExtMCEConfig
        from repro.storage.diskgraph import DiskGraph

        g = seeded_gnp(40, 0.3, seed=6)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w"))
        top = top_k_cliques(algo.enumerate_cliques(), 3)
        oracle = top_k_cliques(list(tomita_maximal_cliques(g)), 3)
        assert [len(c) for c in top] == [len(c) for c in oracle]


class TestStreamConsumerProperties:
    """Property coverage tying the stream consumers to each other."""

    @settings(max_examples=40)
    @given(small_graphs(max_vertices=10))
    def test_maximum_clique_agrees_with_top_1(self, g):
        # The two consumers break size ties differently, so compare the
        # guaranteed part: both return a clique of the maximum size.
        cliques = list(tomita_maximal_cliques(g))
        if not cliques:
            return
        assert len(maximum_clique(cliques)) == len(top_k_cliques(cliques, 1)[0])

    @settings(max_examples=40)
    @given(small_graphs(max_vertices=10))
    def test_top_k_is_order_invariant(self, g):
        cliques = list(tomita_maximal_cliques(g))
        if not cliques:
            return
        forward = top_k_cliques(cliques, 3)
        assert top_k_cliques(list(reversed(cliques)), 3) == forward

    @settings(max_examples=30)
    @given(small_graphs(max_vertices=10))
    def test_communities_cover_every_qualified_clique(self, g):
        cliques = list(tomita_maximal_cliques(g))
        communities = k_clique_communities(cliques, k=3)
        for clique in cliques:
            if len(clique) >= 3:
                assert any(clique <= community for community in communities)


class TestCliquePercolation:
    def test_two_overlapping_triangles_merge(self):
        # Triangles {0,1,2} and {1,2,3} share 2 vertices -> one community.
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
        communities = k_clique_communities(tomita_maximal_cliques(g), k=3)
        assert communities == [fs(0, 1, 2, 3)]

    def test_disjoint_triangles_stay_separate(self):
        g = AdjacencyGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (5, 6), (6, 7), (5, 7)]
        )
        communities = k_clique_communities(tomita_maximal_cliques(g), k=3)
        assert set(communities) == {fs(0, 1, 2), fs(5, 6, 7)}

    def test_single_shared_vertex_does_not_merge(self):
        # Two triangles sharing exactly one vertex: overlap 1 < k-1 = 2.
        g = AdjacencyGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 5), (5, 6), (2, 6)]
        )
        communities = k_clique_communities(tomita_maximal_cliques(g), k=3)
        assert len(communities) == 2

    def test_small_cliques_excluded(self):
        g = AdjacencyGraph.from_edges([(0, 1), (2, 3)])
        assert k_clique_communities(tomita_maximal_cliques(g), k=3) == []

    def test_k_below_two_rejected(self):
        with pytest.raises(GraphError):
            k_clique_communities([], k=1)

    def test_largest_first(self):
        g = AdjacencyGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]  # 4-vertex community
            + [(7, 8), (8, 9), (7, 9)]  # 3-vertex community
        )
        communities = k_clique_communities(tomita_maximal_cliques(g), k=3)
        assert [len(c) for c in communities] == [4, 3]
