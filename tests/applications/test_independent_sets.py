"""Tests for maximal independent sets / minimal vertex covers via MCE."""

import pytest
from hypothesis import given, settings

from repro.applications.independent_sets import (
    complement_graph,
    maximal_independent_sets,
    minimal_vertex_covers,
)
from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph

from tests.helpers import cliques_of, small_graphs


class TestComplement:
    def test_complement_of_clique_is_empty(self):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert complement_graph(g).num_edges == 0

    def test_complement_of_empty_is_clique(self):
        g = AdjacencyGraph.from_edges([], vertices=range(4))
        assert complement_graph(g).num_edges == 6

    def test_double_complement_is_identity(self):
        g = AdjacencyGraph.from_edges([(0, 1), (2, 3), (1, 2)])
        back = complement_graph(complement_graph(g))
        assert {tuple(sorted(e)) for e in back.edges()} == {
            tuple(sorted(e)) for e in g.edges()
        }

    def test_size_limit_enforced(self):
        g = AdjacencyGraph.from_edges([], vertices=range(3_001))
        with pytest.raises(GraphError):
            complement_graph(g)


class TestIndependentSets:
    def test_path_graph(self):
        # P4: 0-1-2-3; maximal independent sets: {0,2}, {0,3}, {1,3}.
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert cliques_of(maximal_independent_sets(g)) == {
            frozenset({0, 2}), frozenset({0, 3}), frozenset({1, 3})
        }

    def test_clique_yields_singletons(self):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert cliques_of(maximal_independent_sets(g)) == {
            frozenset({0}), frozenset({1}), frozenset({2})
        }

    @settings(max_examples=40)
    @given(small_graphs(max_vertices=10))
    def test_results_are_maximal_independent(self, g):
        for independent in maximal_independent_sets(g):
            # Independent: no internal edges.
            for u in independent:
                assert not (g.neighbors(u) & independent)
            # Maximal: every outside vertex has a neighbor inside.
            for v in g.vertices():
                if v not in independent:
                    assert g.neighbors(v) & independent


class TestCliqueDuality:
    """The Section 1 connection: MIS(G) = MCE(complement(G)), exactly."""

    @settings(max_examples=50)
    @given(small_graphs(max_vertices=10))
    def test_independent_sets_are_complement_cliques(self, g):
        from repro.baselines.bron_kerbosch import tomita_maximal_cliques

        independent = cliques_of(maximal_independent_sets(g))
        complement_cliques = cliques_of(tomita_maximal_cliques(complement_graph(g)))
        assert independent == complement_cliques

    @settings(max_examples=30)
    @given(small_graphs(max_vertices=9))
    def test_cover_complements_partition_back_to_independent_sets(self, g):
        everything = frozenset(g.vertices())
        covers = cliques_of(minimal_vertex_covers(g))
        assert {everything - cover for cover in covers} == cliques_of(
            maximal_independent_sets(g)
        )


class TestVertexCovers:
    def test_path_graph_covers(self):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert cliques_of(minimal_vertex_covers(g)) == {
            frozenset({1, 3}), frozenset({1, 2}), frozenset({0, 2})
        }

    @settings(max_examples=30)
    @given(small_graphs(max_vertices=9))
    def test_covers_cover_every_edge(self, g):
        for cover in minimal_vertex_covers(g):
            for u, v in g.edges():
                assert u in cover or v in cover
