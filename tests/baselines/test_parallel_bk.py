"""Tests for the Par-TTT-style parallel Bron–Kerbosch baseline."""

from hypothesis import given, settings

from repro.baselines.bron_kerbosch import (
    bron_kerbosch_maximal_cliques,
    tomita_maximal_cliques,
    tomita_subproblem,
)
from repro.baselines.parallel_bk import (
    _chunk_vertices,
    parallel_bron_kerbosch_maximal_cliques,
)

from tests.helpers import cliques_of, figure1_graph, seeded_gnp, small_graphs


class TestSubproblemSplit:
    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs())
    def test_subproblems_partition_the_clique_set(self, graph):
        oracle = cliques_of(tomita_maximal_cliques(graph))
        pieces = []
        for v in sorted(graph.vertices()):
            for clique in tomita_subproblem(graph, v):
                assert min(clique) == v
                pieces.append(clique)
        assert len(pieces) == len(oracle)  # no duplicates across subproblems
        assert cliques_of(pieces) == oracle

    def test_figure1_subproblem_of_smallest_vertex(self):
        graph = figure1_graph()
        found = cliques_of(tomita_subproblem(graph, 0))
        assert found == {c for c in cliques_of(tomita_maximal_cliques(graph)) if min(c) == 0}


class TestParallelBK:
    def test_matches_serial_oracles(self):
        graph = seeded_gnp(70, 0.18, seed=8)
        oracle = cliques_of(bron_kerbosch_maximal_cliques(graph))
        result = parallel_bron_kerbosch_maximal_cliques(graph, workers=2)
        assert cliques_of(result) == oracle

    def test_output_order_canonical_and_worker_invariant(self):
        graph = seeded_gnp(40, 0.25, seed=2)
        one = parallel_bron_kerbosch_maximal_cliques(graph, workers=1)
        four = parallel_bron_kerbosch_maximal_cliques(graph, workers=4)
        assert one == four
        as_tuples = [tuple(sorted(c)) for c in one]
        assert as_tuples == sorted(as_tuples)

    def test_empty_graph(self):
        from repro.graph.adjacency import AdjacencyGraph

        assert parallel_bron_kerbosch_maximal_cliques(AdjacencyGraph(), workers=2) == []

    def test_isolated_vertices(self):
        from repro.graph.adjacency import AdjacencyGraph

        graph = AdjacencyGraph.from_edges([], vertices=range(3))
        result = parallel_bron_kerbosch_maximal_cliques(graph, workers=2)
        assert cliques_of(result) == {frozenset({v}) for v in range(3)}

    def test_pool_failure_falls_back(self, monkeypatch):
        import multiprocessing

        def boom(*args, **kwargs):
            raise OSError("pool unavailable")

        monkeypatch.setattr(multiprocessing, "Pool", boom)
        graph = seeded_gnp(30, 0.3, seed=4)
        result = parallel_bron_kerbosch_maximal_cliques(graph, workers=4)
        assert cliques_of(result) == cliques_of(tomita_maximal_cliques(graph))


class TestChunking:
    def test_stripes_cover_everything_once(self):
        vertices = list(range(17))
        chunks = _chunk_vertices(vertices, 4)
        flattened = sorted(v for chunk in chunks for v in chunk)
        assert flattened == vertices

    def test_degenerate_chunk_counts(self):
        assert _chunk_vertices([1], 8) == [(1,)]
        assert _chunk_vertices([], 3) == []
