"""Tests for the degeneracy-ordered enumerator (Eppstein-Strash)."""

from hypothesis import given, settings

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.baselines.degeneracy import degeneracy_maximal_cliques
from repro.graph.adjacency import AdjacencyGraph

from tests.helpers import cliques_of, seeded_gnp, small_graphs


class TestAgreement:
    @settings(max_examples=60)
    @given(small_graphs())
    def test_matches_tomita(self, g):
        assert cliques_of(degeneracy_maximal_cliques(g)) == cliques_of(
            tomita_maximal_cliques(g)
        )

    def test_medium_graph(self, medium_random):
        assert cliques_of(degeneracy_maximal_cliques(medium_random)) == cliques_of(
            tomita_maximal_cliques(medium_random)
        )

    def test_scale_free_graph(self):
        from repro.generators import powerlaw_cluster_graph

        g = powerlaw_cluster_graph(300, 3, 0.6, seed=5)
        assert cliques_of(degeneracy_maximal_cliques(g)) == cliques_of(
            tomita_maximal_cliques(g)
        )


class TestEdgeCases:
    def test_empty_graph(self):
        assert list(degeneracy_maximal_cliques(AdjacencyGraph())) == []

    def test_isolated_vertices(self):
        g = AdjacencyGraph.from_edges([], vertices=[1, 2])
        assert cliques_of(degeneracy_maximal_cliques(g)) == {
            frozenset({1}), frozenset({2})
        }

    def test_single_edge(self):
        g = AdjacencyGraph.from_edges([(4, 7)])
        assert cliques_of(degeneracy_maximal_cliques(g)) == {frozenset({4, 7})}

    def test_no_duplicates_on_dense_graph(self):
        g = seeded_gnp(18, 0.6, seed=3)
        found = list(degeneracy_maximal_cliques(g))
        assert len(found) == len(set(found))
