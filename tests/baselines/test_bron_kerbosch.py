"""Tests for the Bron-Kerbosch / Tomita in-memory enumerators."""

import pytest
from hypothesis import given, settings

from repro.baselines.bron_kerbosch import (
    bron_kerbosch_maximal_cliques,
    tomita_maximal_cliques,
)
from repro.errors import MemoryBudgetExceeded
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.memory import MemoryModel

from tests.helpers import cliques_of, seeded_gnp, small_graphs


def complete_graph(n):
    return AdjacencyGraph.from_edges([(u, v) for u in range(n) for v in range(u + 1, n)])


class TestKnownGraphs:
    def test_triangle(self):
        g = complete_graph(3)
        assert cliques_of(tomita_maximal_cliques(g)) == {frozenset({0, 1, 2})}

    def test_complete_graph_single_clique(self):
        g = complete_graph(6)
        assert cliques_of(tomita_maximal_cliques(g)) == {frozenset(range(6))}

    def test_path_yields_edges(self):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert cliques_of(tomita_maximal_cliques(g)) == {
            frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3})
        }

    def test_isolated_vertices_are_singletons(self):
        g = AdjacencyGraph.from_edges([(0, 1)], vertices=[5])
        assert frozenset({5}) in cliques_of(tomita_maximal_cliques(g))

    def test_empty_graph_yields_nothing(self):
        assert list(tomita_maximal_cliques(AdjacencyGraph())) == []

    def test_moon_moser_count(self):
        # The complete tripartite graph K(2,2,2) has 2*2*2 = 8 max cliques.
        parts = [(0, 1), (2, 3), (4, 5)]
        edges = [
            (u, v)
            for i, a in enumerate(parts)
            for b in parts[i + 1 :]
            for u in a
            for v in b
        ]
        g = AdjacencyGraph.from_edges(edges)
        assert len(cliques_of(tomita_maximal_cliques(g))) == 8

    def test_figure1_graph_cliques(self, figure1):
        # Paper Example 2: M_H+ = {abcwx, acy, bcde, cey, drz, esy}; the two
        # cliques outside H+ are {q,r} and {s,t}.
        from tests.helpers import names_of

        names = sorted(names_of(c) for c in tomita_maximal_cliques(figure1))
        assert names == ["abcwx", "acy", "bcde", "cey", "drz", "esy", "qr", "st"]


class TestAgreement:
    @settings(max_examples=60)
    @given(small_graphs())
    def test_pivot_and_plain_agree(self, g):
        assert cliques_of(tomita_maximal_cliques(g)) == cliques_of(
            bron_kerbosch_maximal_cliques(g)
        )

    def test_medium_graph_agreement(self, medium_random):
        assert cliques_of(tomita_maximal_cliques(medium_random)) == cliques_of(
            bron_kerbosch_maximal_cliques(medium_random)
        )

    @settings(max_examples=40)
    @given(small_graphs())
    def test_every_result_is_a_maximal_clique(self, g):
        for clique in tomita_maximal_cliques(g):
            assert g.is_maximal_clique(clique)

    @settings(max_examples=40)
    @given(small_graphs())
    def test_no_duplicates(self, g):
        found = list(tomita_maximal_cliques(g))
        assert len(found) == len(set(found))

    @settings(max_examples=30)
    @given(small_graphs())
    def test_every_vertex_covered(self, g):
        covered = set()
        for clique in tomita_maximal_cliques(g):
            covered |= clique
        assert covered == set(g.vertices())


class TestMemoryCharging:
    def test_footprint_charged_while_running(self):
        g = seeded_gnp(20, 0.3, seed=2)
        memory = MemoryModel()
        for _ in tomita_maximal_cliques(g, memory=memory):
            assert memory.in_use_units >= 2 * g.num_edges + g.num_vertices
        assert memory.in_use_units == 0

    def test_budget_too_small_raises(self):
        g = seeded_gnp(20, 0.3, seed=2)
        memory = MemoryModel(budget=g.num_edges)  # < 2m + n
        with pytest.raises(MemoryBudgetExceeded):
            list(tomita_maximal_cliques(g, memory=memory))
