"""Tests for the Stix incremental MCE baseline (both fidelity modes)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.baselines.stix import StixDynamicMCE
from repro.errors import EdgeNotFoundError, GraphError
from repro.storage.memory import MemoryModel

from tests.helpers import cliques_of


@pytest.fixture(params=[False, True], ids=["faithful", "indexed"])
def mode(request):
    return request.param


class TestInsertion:
    def test_single_edge(self, mode):
        algo = StixDynamicMCE(indexed=mode)
        algo.insert_edge(0, 1)
        assert cliques_of(algo.cliques()) == {frozenset({0, 1})}

    def test_triangle_closure_merges_cliques(self, mode):
        algo = StixDynamicMCE(indexed=mode)
        for e in [(0, 1), (1, 2), (0, 2)]:
            algo.insert_edge(*e)
        assert cliques_of(algo.cliques()) == {frozenset({0, 1, 2})}

    def test_duplicate_edge_is_noop(self, mode):
        algo = StixDynamicMCE(indexed=mode)
        algo.insert_edge(0, 1)
        algo.insert_edge(0, 1)
        assert algo.edges_processed == 1
        assert algo.num_cliques() == 1

    def test_self_loop_rejected(self, mode):
        with pytest.raises(GraphError):
            StixDynamicMCE(indexed=mode).insert_edge(3, 3)

    def test_isolated_vertex_singleton(self, mode):
        algo = StixDynamicMCE(indexed=mode)
        algo.add_vertex(9)
        assert cliques_of(algo.cliques()) == {frozenset({9})}

    def test_singleton_absorbed_by_first_edge(self, mode):
        algo = StixDynamicMCE(indexed=mode)
        algo.add_vertex(0)
        algo.add_vertex(1)
        algo.insert_edge(0, 1)
        assert cliques_of(algo.cliques()) == {frozenset({0, 1})}


class TestDeletion:
    def test_delete_splits_clique(self, mode):
        algo = StixDynamicMCE.from_edges([(0, 1), (1, 2), (0, 2)], indexed=mode)
        algo.delete_edge(0, 1)
        assert cliques_of(algo.cliques()) == {frozenset({0, 2}), frozenset({1, 2})}

    def test_delete_missing_edge_raises(self, mode):
        algo = StixDynamicMCE(indexed=mode)
        algo.insert_edge(0, 1)
        with pytest.raises(EdgeNotFoundError):
            algo.delete_edge(0, 2)

    def test_delete_to_singletons(self, mode):
        algo = StixDynamicMCE.from_edges([(0, 1)], indexed=mode)
        algo.delete_edge(0, 1)
        assert cliques_of(algo.cliques()) == {frozenset({0}), frozenset({1})}


class TestOracleEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_insertion_stream(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 14)
        edges = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < 0.4
        ]
        rng.shuffle(edges)
        for indexed in (False, True):
            algo = StixDynamicMCE.from_edges(edges, indexed=indexed)
            for w in range(n):
                algo.add_vertex(w)
            oracle = cliques_of(tomita_maximal_cliques(algo.graph))
            assert cliques_of(algo.cliques()) == oracle

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_mixed_insert_delete_stream(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 12)
        algo = StixDynamicMCE(indexed=bool(seed % 2))
        present = set()
        for _ in range(60):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            edge = (min(u, v), max(u, v))
            if edge in present and rng.random() < 0.5:
                algo.delete_edge(*edge)
                present.discard(edge)
            elif edge not in present:
                algo.insert_edge(*edge)
                present.add(edge)
        oracle = cliques_of(tomita_maximal_cliques(algo.graph))
        assert cliques_of(algo.cliques()) == oracle


class TestMemoryAccounting:
    def test_clique_storage_charged(self):
        memory = MemoryModel()
        algo = StixDynamicMCE.from_edges([(0, 1), (1, 2), (0, 2)], memory=memory)
        assert memory.in_use_units == 3  # one triangle

    def test_release_on_subsumption(self):
        memory = MemoryModel()
        algo = StixDynamicMCE(memory=memory)
        algo.insert_edge(0, 1)
        algo.insert_edge(1, 2)
        algo.insert_edge(0, 2)
        # only {0,1,2} remains; peak was higher while edges were separate
        assert memory.in_use_units == 3
        assert memory.peak_units >= 4
