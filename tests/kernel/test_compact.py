"""Unit tests for the compact CSR + bitmask graph representation."""

import pytest

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.adjacency import AdjacencyGraph
from repro.kernel import CompactGraph

from tests.helpers import figure1_graph, seeded_gnp


class TestFromAdjacency:
    def test_labels_ascending_and_positional(self):
        g = AdjacencyGraph.from_edges([(10, 30), (30, 20)])
        cg = CompactGraph.from_adjacency(g)
        assert cg.labels == (10, 20, 30)
        assert cg.index_of == {10: 0, 20: 1, 30: 2}

    def test_masks_match_adjacency(self):
        g = seeded_gnp(40, 0.2, seed=3)
        cg = CompactGraph.from_adjacency(g)
        for i, label in enumerate(cg.labels):
            expected = {cg.index_of[u] for u in g.neighbors(label)}
            actual = {
                j for j in range(cg.num_vertices) if cg.masks[i] >> j & 1
            }
            assert actual == expected
            assert not cg.masks[i] >> i & 1  # no self-loop bit

    def test_masks_symmetric(self):
        cg = CompactGraph.from_adjacency(seeded_gnp(30, 0.3, seed=9))
        for i in range(cg.num_vertices):
            for j in range(cg.num_vertices):
                assert (cg.masks[i] >> j & 1) == (cg.masks[j] >> i & 1)

    def test_counts_and_degrees(self):
        g = figure1_graph()
        cg = CompactGraph.from_adjacency(g)
        assert cg.num_vertices == g.num_vertices
        assert cg.num_edges == g.num_edges
        for i, label in enumerate(cg.labels):
            assert cg.degree(i) == len(g.neighbors(label))

    def test_unorderable_labels_rejected(self):
        g = AdjacencyGraph.from_edges([(1, "a")])
        with pytest.raises(GraphError):
            CompactGraph.from_adjacency(g)

    def test_empty_graph(self):
        cg = CompactGraph.from_adjacency(AdjacencyGraph())
        assert cg.num_vertices == 0
        assert cg.num_edges == 0
        assert cg.full_mask == 0


class TestFromNeighborLists:
    def test_symmetrises_one_sided_lists(self):
        cg = CompactGraph.from_neighbor_lists({1: [2], 2: [], 3: [2]})
        assert cg.num_edges == 2
        assert cg.masks[cg.index_of[2]] == (
            1 << cg.index_of[1] | 1 << cg.index_of[3]
        )

    def test_unknown_neighbor_rejected(self):
        with pytest.raises(VertexNotFoundError):
            CompactGraph.from_neighbor_lists({1: [2]})

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            CompactGraph.from_neighbor_lists({1: [1]})


class TestFromCsr:
    def test_round_trips_the_fast_path(self):
        reference = CompactGraph.from_adjacency(seeded_gnp(25, 0.25, seed=4))
        cg = CompactGraph.from_csr(
            reference.labels, reference.indptr, reference.indices
        )
        assert cg.labels == reference.labels
        assert cg.masks == reference.masks
        assert list(cg.indptr) == list(reference.indptr)
        assert list(cg.indices) == list(reference.indices)

    def test_accepts_plain_sequences(self):
        cg = CompactGraph.from_csr((5, 7), [0, 1, 2], [1, 0])
        assert cg.labels == (5, 7)
        assert cg.masks == [0b10, 0b01]


class TestQueries:
    def test_subset_mask(self):
        cg = CompactGraph.from_adjacency(figure1_graph())
        mask = cg.subset_mask([cg.labels[0], cg.labels[3]])
        assert mask == 0b1001

    def test_subset_mask_unknown_vertex(self):
        cg = CompactGraph.from_adjacency(figure1_graph())
        with pytest.raises(VertexNotFoundError):
            cg.subset_mask([10_000])

    def test_full_mask(self):
        cg = CompactGraph.from_adjacency(seeded_gnp(10, 0.5, seed=1))
        assert cg.full_mask == (1 << 10) - 1

    def test_to_adjacency_round_trip(self):
        g = seeded_gnp(35, 0.15, seed=8)
        back = CompactGraph.from_adjacency(g).to_adjacency_graph()
        assert set(back.vertices()) == set(g.vertices())
        for v in g.vertices():
            assert back.neighbors(v) == g.neighbors(v)
