"""Unit tests for the big-int bitmask enumeration kernel."""

import pytest

from repro.errors import VertexNotFoundError
from repro.graph.adjacency import AdjacencyGraph
from repro.kernel import (
    CompactGraph,
    iter_bits,
    maximal_cliques_bitset,
    subproblem_bitset,
)

from tests.helpers import cliques_of, figure1_graph, names_of, seeded_gnp


def complete_graph(n: int) -> AdjacencyGraph:
    return AdjacencyGraph.from_edges(
        [(u, v) for u in range(n) for v in range(u + 1, n)]
    )


class TestIterBits:
    def test_yields_ascending_positions(self):
        assert list(iter_bits(0b101101)) == [0, 2, 3, 5]

    def test_zero_mask(self):
        assert list(iter_bits(0)) == []

    def test_wide_mask(self):
        mask = 1 << 500 | 1 << 63 | 1
        assert list(iter_bits(mask)) == [0, 63, 500]


class TestMaximalCliquesBitset:
    def test_figure1_core(self):
        star_core = figure1_graph().induced_subgraph(range(5))
        cg = CompactGraph.from_adjacency(star_core)
        found = {names_of(c) for c in maximal_cliques_bitset(cg)}
        assert found == {"abc", "bcde"}

    def test_empty_graph(self):
        cg = CompactGraph.from_adjacency(AdjacencyGraph())
        assert list(maximal_cliques_bitset(cg)) == []

    def test_single_vertex(self):
        g = AdjacencyGraph()
        g.add_vertex(7)
        cg = CompactGraph.from_adjacency(g)
        assert list(maximal_cliques_bitset(cg)) == [frozenset({7})]

    def test_isolated_vertices_are_singleton_cliques(self):
        g = AdjacencyGraph.from_edges([(0, 1)], vertices=range(4))
        cg = CompactGraph.from_adjacency(g)
        assert cliques_of(maximal_cliques_bitset(cg)) == {
            frozenset({0, 1}),
            frozenset({2}),
            frozenset({3}),
        }

    def test_complete_graph_single_clique(self):
        cg = CompactGraph.from_adjacency(complete_graph(9))
        assert list(maximal_cliques_bitset(cg)) == [frozenset(range(9))]

    def test_star_graph_cliques_are_edges(self):
        g = AdjacencyGraph.from_edges([(0, leaf) for leaf in range(1, 6)])
        cg = CompactGraph.from_adjacency(g)
        assert cliques_of(maximal_cliques_bitset(cg)) == {
            frozenset({0, leaf}) for leaf in range(1, 6)
        }

    def test_subset_mask_matches_induced_subgraph(self):
        g = seeded_gnp(30, 0.3, seed=11)
        cg = CompactGraph.from_adjacency(g)
        subset = set(range(0, 30, 2))
        induced = CompactGraph.from_adjacency(g.induced_subgraph(subset))
        restricted = list(maximal_cliques_bitset(cg, cg.subset_mask(subset)))
        assert restricted == list(maximal_cliques_bitset(induced))

    def test_empty_subset_mask_yields_nothing(self):
        cg = CompactGraph.from_adjacency(seeded_gnp(10, 0.4, seed=2))
        assert list(maximal_cliques_bitset(cg, 0)) == []


class TestSubproblemBitset:
    def test_partitions_by_smallest_member(self):
        g = seeded_gnp(25, 0.3, seed=6)
        cg = CompactGraph.from_adjacency(g)
        all_cliques = list(maximal_cliques_bitset(cg))
        recombined = []
        for start in sorted(g.vertices()):
            for clique in subproblem_bitset(cg, start):
                assert min(clique) == start
                recombined.append(clique)
        assert cliques_of(recombined) == cliques_of(all_cliques)

    def test_unknown_start_raises(self):
        cg = CompactGraph.from_adjacency(seeded_gnp(5, 0.5, seed=1))
        with pytest.raises(VertexNotFoundError):
            list(subproblem_bitset(cg, 99))
