"""Byte-identity of the bitset hot path with the set-based reference.

The contract everything downstream relies on: for any graph, the bitset
kernel produces *the same cliques in the same order* as the set-based
pivoted enumerator — not merely the same set.  That is what lets
``--kernel`` flip freely without perturbing output files, hashtable
filtering, or checkpoint/resume determinism.
"""

import tempfile

import pytest

from repro.baselines.bron_kerbosch import (
    tomita_maximal_cliques,
    tomita_subproblem,
)
from repro.core.clique_tree import build_clique_tree, enumerate_star_cliques
from repro.core.hstar import extract_hstar_graph
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.diskgraph import DiskGraph

from tests.helpers import figure1_graph, seeded_gnp

GRAPHS = [
    ("figure1", figure1_graph()),
    ("gnp_sparse", seeded_gnp(60, 0.08, seed=21)),
    ("gnp_medium", seeded_gnp(45, 0.25, seed=22)),
    ("gnp_dense", seeded_gnp(30, 0.5, seed=23)),
]


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
class TestStreamIdentity:
    def test_full_enumeration_stream(self, name, graph):
        set_stream = list(tomita_maximal_cliques(graph, kernel="set"))
        bitset_stream = list(tomita_maximal_cliques(graph, kernel="bitset"))
        assert bitset_stream == set_stream

    def test_subproblem_streams(self, name, graph):
        for start in sorted(graph.vertices()):
            set_stream = list(tomita_subproblem(graph, start, kernel="set"))
            bitset_stream = list(
                tomita_subproblem(graph, start, kernel="bitset")
            )
            assert bitset_stream == set_stream

    def test_star_clique_stream(self, name, graph):
        star = extract_hstar_graph(graph)
        set_stream = list(enumerate_star_cliques(star, kernel="set"))
        bitset_stream = list(enumerate_star_cliques(star, kernel="bitset"))
        assert bitset_stream == set_stream

    def test_clique_tree_identical(self, name, graph):
        star = extract_hstar_graph(graph)
        tree_set, mh_set = build_clique_tree(star, kernel="set")
        tree_bit, mh_bit = build_clique_tree(star, kernel="bitset")
        assert mh_bit == mh_set
        assert list(tree_bit.cliques()) == list(tree_set.cliques())
        assert tree_bit.num_nodes == tree_set.num_nodes


class TestDriverIdentity:
    """End-to-end: ExtMCE output is kernel- and worker-count-invariant."""

    @pytest.fixture(scope="class")
    def graph(self):
        return seeded_gnp(90, 0.12, seed=31)

    def _run(self, graph, kernel, workers):
        from repro import ExtMCE, ExtMCEConfig, ParallelExtMCE

        with tempfile.TemporaryDirectory() as tmp:
            disk = DiskGraph.create(f"{tmp}/g.bin", graph)
            cls = ParallelExtMCE if workers > 1 else ExtMCE
            config = ExtMCEConfig(workdir=tmp, workers=workers, kernel=kernel)
            return list(cls(disk, config).enumerate_cliques())

    def test_cross_kernel_cross_worker_streams(self, graph):
        reference = self._run(graph, "set", 1)
        assert reference
        for kernel in ("set", "bitset"):
            for workers in (1, 2):
                assert self._run(graph, kernel, workers) == reference

    def test_unknown_kernel_rejected(self, graph):
        with pytest.raises(ValueError):
            list(tomita_maximal_cliques(graph, kernel="avx"))


class TestMeteredRunsUseSetPath:
    def test_metered_enumeration_ignores_bitset(self):
        """With a memory model attached the set path must run (the bitset
        collector would falsify the paper's memory accounting)."""
        from repro.storage.memory import MemoryModel

        graph = seeded_gnp(20, 0.4, seed=5)
        memory = MemoryModel()
        metered = list(
            tomita_maximal_cliques(graph, memory=memory, kernel="bitset")
        )
        assert metered == list(tomita_maximal_cliques(graph, kernel="set"))
        assert memory.peak_units > 0


def test_vertex_labels_survive_the_round_trip():
    """Non-contiguous, non-zero-based labels come back untranslated."""
    g = AdjacencyGraph.from_edges([(100, 205), (205, 309), (100, 309), (309, 400)])
    set_stream = list(tomita_maximal_cliques(g, kernel="set"))
    bitset_stream = list(tomita_maximal_cliques(g, kernel="bitset"))
    assert bitset_stream == set_stream == [
        frozenset({100, 205, 309}),
        frozenset({309, 400}),
    ]
