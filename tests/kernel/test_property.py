"""Property tests: the bitset kernel against the Bron-Kerbosch oracle.

``bron_kerbosch_maximal_cliques`` is the repo's unpivoted reference
implementation — deliberately naive, independently written.  The bitset
kernel must agree with it on the *set* of maximal cliques for arbitrary
graphs, and with the set-based Tomita path on the exact stream.
"""

from hypothesis import given, settings

from repro.baselines.bron_kerbosch import (
    bron_kerbosch_maximal_cliques,
    tomita_maximal_cliques,
)
from repro.generators import powerlaw_cluster_graph
from repro.graph.adjacency import AdjacencyGraph
from repro.kernel import CompactGraph, maximal_cliques_bitset

from tests.helpers import cliques_of, small_graphs


def bitset_cliques(graph):
    return list(maximal_cliques_bitset(CompactGraph.from_adjacency(graph)))


@given(graph=small_graphs())
@settings(max_examples=120, deadline=None)
def test_bitset_matches_oracle_on_arbitrary_graphs(graph):
    assert cliques_of(bitset_cliques(graph)) == cliques_of(
        bron_kerbosch_maximal_cliques(graph)
    )


@given(graph=small_graphs())
@settings(max_examples=120, deadline=None)
def test_bitset_stream_matches_set_stream(graph):
    assert bitset_cliques(graph) == list(
        tomita_maximal_cliques(graph, kernel="set")
    )


def test_oracle_agreement_on_seeded_scale_free_graph():
    graph = powerlaw_cluster_graph(300, 3, 0.4, seed=17)
    assert cliques_of(bitset_cliques(graph)) == cliques_of(
        bron_kerbosch_maximal_cliques(graph)
    )


class TestEdgeCaseGraphs:
    def test_empty_graph(self):
        assert bitset_cliques(AdjacencyGraph()) == []

    def test_only_isolated_vertices(self):
        graph = AdjacencyGraph.from_edges([], vertices=range(6))
        assert cliques_of(bitset_cliques(graph)) == {
            frozenset({v}) for v in range(6)
        }

    def test_stars(self):
        for leaves in (1, 2, 7):
            graph = AdjacencyGraph.from_edges(
                [(0, leaf) for leaf in range(1, leaves + 1)]
            )
            expected = {frozenset({0, leaf}) for leaf in range(1, leaves + 1)}
            assert cliques_of(bitset_cliques(graph)) == expected

    def test_complete_graphs(self):
        for n in (2, 3, 8, 65):  # 65 crosses the 64-bit word boundary
            graph = AdjacencyGraph.from_edges(
                [(u, v) for u in range(n) for v in range(u + 1, n)]
            )
            assert bitset_cliques(graph) == [frozenset(range(n))]

    def test_oracle_agreement_on_edge_cases(self):
        cases = [
            AdjacencyGraph.from_edges([], vertices=range(4)),
            AdjacencyGraph.from_edges([(0, 1), (2, 3)], vertices=range(5)),
            AdjacencyGraph.from_edges([(0, leaf) for leaf in range(1, 9)]),
            AdjacencyGraph.from_edges(
                [(u, v) for u in range(7) for v in range(u + 1, 7)]
            ),
        ]
        for graph in cases:
            assert cliques_of(bitset_cliques(graph)) == cliques_of(
                bron_kerbosch_maximal_cliques(graph)
            )
