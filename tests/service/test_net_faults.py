"""Wire-protocol behavior under injected network faults.

The ``"net"`` fault site arms the serving tier's socket paths: the
accept loop (``accept``, honours ``accept_stall``) and the per-reply
write path (``write:<peer>``, honours ``conn_reset`` / ``partial_line``
/ ``slow_write``).  The invariant pinned here is the issue's acceptance
line: *for every request on a surviving connection the server sends
exactly one reply*, and a connection the plan kills surfaces client-side
as a typed :class:`~repro.errors.ServiceUnavailableError` — never a
hang, never a duplicate or interleaved reply.
"""

import json
import socket
import threading
import time

import pytest

from repro import metrics
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import ServiceUnavailableError
from repro.faults import FaultPlan, FaultRule
from repro.index import CliqueIndex, build_index
from repro.service import (
    CliqueQueryClient,
    CliqueQueryEngine,
    CliqueQueryServer,
    RetryPolicy,
)

from tests.helpers import seeded_gnp


@pytest.fixture()
def fresh_registry():
    previous = metrics.get_registry()
    registry = metrics.MetricsRegistry()
    metrics.set_registry(registry)
    yield registry
    metrics.set_registry(previous)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    graph = seeded_gnp(30, 0.3, seed=7)
    cliques = sorted(tuple(sorted(c)) for c in set(tomita_maximal_cliques(graph)))
    directory = tmp_path_factory.mktemp("netfaults") / "idx"
    build_index(cliques, directory)
    return graph, cliques, directory


def _serving(directory, fault_plan=None, **kw):
    index = CliqueIndex(directory)
    engine = CliqueQueryEngine(index)
    server = CliqueQueryServer(engine, fault_plan=fault_plan, **kw).start()
    return index, server


def _net_plan(kind, *, path=None, firings=1, probability=1.0, latency=0.05, seed=5):
    return FaultPlan(
        [
            FaultRule(
                operation="net",
                kind=kind,
                probability=probability,
                max_firings=firings,
                path_contains=path,
                latency_seconds=latency,
            )
        ],
        seed=seed,
    )


class TestConnectionReset:
    def test_mid_reply_reset_is_typed_and_next_connection_survives(
        self, corpus, fresh_registry
    ):
        _graph, cliques, directory = corpus
        index, server = _serving(
            directory, fault_plan=_net_plan("conn_reset", path="write")
        )
        try:
            host, port = server.address
            no_retry = CliqueQueryClient(
                host, port, timeout_seconds=5.0,
                retry_policy=RetryPolicy(max_attempts=1),
            )
            with pytest.raises(ServiceUnavailableError):
                no_retry.stats()
            no_retry.close()
            # The fault budget is spent: a fresh connection gets exactly
            # one clean reply per request.
            with CliqueQueryClient(host, port, timeout_seconds=5.0) as client:
                assert client.stats().result["num_cliques"] == len(cliques)
            assert metrics.counter_value(
                fresh_registry.snapshot(), "repro_server_net_faults_total"
            ) == 1
        finally:
            server.stop()
            index.close()

    def test_retrying_client_recovers_transparently(self, corpus):
        _graph, cliques, directory = corpus
        index, server = _serving(
            directory, fault_plan=_net_plan("conn_reset", path="write")
        )
        try:
            host, port = server.address
            client = CliqueQueryClient(
                host, port, timeout_seconds=5.0,
                retry_policy=RetryPolicy(max_attempts=3, base_sleep=0.01),
            )
            # First attempt is reset mid-write; the retry reconnects and
            # the answer is correct — the caller never sees the fault.
            assert client.stats().result["num_cliques"] == len(cliques)
            client.close()
        finally:
            server.stop()
            index.close()


class TestPartialLine:
    def test_truncated_reply_never_parses_as_an_answer(self, corpus):
        """A reply cut mid-line must surface as a transport error, not a
        short-but-valid JSON answer (the classic torn-write hazard)."""
        _graph, _cliques, directory = corpus
        index, server = _serving(
            directory, fault_plan=_net_plan("partial_line", path="write")
        )
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5.0) as sock:
                sock.sendall(b'{"id": 1, "op": "top_k_largest", "args": {"k": 5}}\n')
                handle = sock.makefile("rb")
                try:
                    data = handle.readline()
                except OSError:  # the reset may arrive before any bytes
                    data = b""
            # Either nothing or a prefix without the newline terminator:
            # in both cases the JSON-lines framing rejects it.
            assert not data.endswith(b"\n") or data == b""
        finally:
            server.stop()
            index.close()


class TestSlowLoris:
    def test_slow_write_still_delivers_exactly_one_full_reply(self, corpus):
        _graph, cliques, directory = corpus
        index, server = _serving(
            directory,
            fault_plan=_net_plan("slow_write", path="write", latency=0.02),
        )
        try:
            host, port = server.address
            with CliqueQueryClient(host, port, timeout_seconds=10.0) as client:
                started = time.monotonic()
                reply = client.stats()
                elapsed = time.monotonic() - started
            assert reply.result["num_cliques"] == len(cliques)
            assert elapsed >= 0.02  # the trickle really happened
        finally:
            server.stop()
            index.close()

    def test_slow_peer_does_not_block_other_connections(self, corpus):
        """While one reply trickles out, a second connection is served."""
        _graph, cliques, directory = corpus
        index, server = _serving(
            directory,
            fault_plan=_net_plan("slow_write", path="write", latency=0.1),
        )
        try:
            host, port = server.address
            slow_done = threading.Event()

            def slow_one():
                with CliqueQueryClient(host, port, timeout_seconds=15.0) as c:
                    c.stats()
                slow_done.set()

            thread = threading.Thread(target=slow_one)
            thread.start()
            time.sleep(0.05)  # let the slow write start trickling
            started = time.monotonic()
            with CliqueQueryClient(host, port, timeout_seconds=5.0) as fast:
                assert fast.stats().result["num_cliques"] == len(cliques)
            assert time.monotonic() - started < 2.0
            thread.join(timeout=15.0)
            assert slow_done.is_set()
        finally:
            server.stop()
            index.close()


class TestAcceptStall:
    def test_stalled_accept_delays_but_serves(self, corpus):
        _graph, cliques, directory = corpus
        index, server = _serving(
            directory,
            fault_plan=_net_plan("accept_stall", path="accept", latency=0.3),
        )
        try:
            host, port = server.address
            started = time.monotonic()
            with CliqueQueryClient(host, port, timeout_seconds=10.0) as client:
                assert client.stats().result["num_cliques"] == len(cliques)
            assert time.monotonic() - started >= 0.3
        finally:
            server.stop()
            index.close()


class TestOneReplyPerRequest:
    def test_mixed_fault_storm_yields_exactly_one_reply_per_survivor(self, corpus):
        """Drive many requests through a probabilistic reset/slow plan and
        account for every one: a request either errors at the transport
        (typed) or gets exactly one reply with its own id — never zero,
        never two."""
        _graph, cliques, directory = corpus
        plan = FaultPlan(
            [
                FaultRule(
                    operation="net", kind="conn_reset", probability=0.2,
                    max_firings=None, path_contains="write",
                ),
                FaultRule(
                    operation="net", kind="slow_write", probability=0.2,
                    max_firings=None, path_contains="write",
                    latency_seconds=0.01,
                ),
            ],
            seed=17,
        )
        index, server = _serving(directory, fault_plan=plan)
        try:
            host, port = server.address
            answered = 0
            reset = 0
            for request_id in range(40):
                with socket.create_connection((host, port), timeout=5.0) as sock:
                    sock.sendall(
                        json.dumps(
                            {"id": request_id, "op": "stats", "args": {}}
                        ).encode() + b"\n"
                    )
                    handle = sock.makefile("rb")
                    try:
                        line = handle.readline()
                    except OSError:
                        line = b""
                    if not line.endswith(b"\n"):
                        reset += 1
                        continue
                    reply = json.loads(line)
                    assert reply["id"] == request_id
                    assert reply["ok"] is True
                    assert reply["result"]["num_cliques"] == len(cliques)
                    answered += 1
                    # No second line may ever arrive for this request.
                    sock.settimeout(0.1)
                    try:
                        extra = handle.readline()
                    except (TimeoutError, OSError):
                        extra = b""
                    assert extra == b"", f"duplicate reply for {request_id}: {extra!r}"
            assert answered + reset == 40
            assert answered > 0, "the storm killed every connection"
            assert reset > 0, "the plan never fired; the test is vacuous"
        finally:
            server.stop()
            index.close()
