"""CliqueQueryEngine: caching, dedup, timeouts, degradation."""

import threading

import pytest

from repro import metrics
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import GraphError, QueryTimeoutError, ServiceError
from repro.faults import FaultPlan, FaultRule
from repro.index import CliqueIndex, build_index
from repro.service import CliqueQueryEngine

from tests.helpers import seeded_gnp


@pytest.fixture()
def fresh_registry():
    previous = metrics.get_registry()
    registry = metrics.MetricsRegistry()
    metrics.set_registry(registry)
    yield registry
    metrics.set_registry(previous)


def _build(tmp_path, seed=3):
    graph = seeded_gnp(30, 0.3, seed=seed)
    cliques = sorted(tuple(sorted(c)) for c in set(tomita_maximal_cliques(graph)))
    build_index(cliques, tmp_path / "idx")
    return cliques


class TestBasicQueries:
    def test_all_operations_answer(self, tmp_path):
        cliques = _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index)
            assert engine.cliques_containing(0).value == list(
                index.cliques_containing(0)
            )
            assert engine.clique(0).value == list(cliques[0])
            assert engine.membership(cliques[0]).value == [0]
            assert engine.top_k_largest(2).value == [
                list(c) for c in index.top_k_largest(2)
            ]
            assert engine.stats().value["num_cliques"] == len(cliques)

    def test_unknown_operation_rejected(self, tmp_path):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index)
            with pytest.raises(ServiceError, match="unknown operation"):
                engine.query("drop_tables")

    def test_bad_arguments_raise_not_degrade(self, tmp_path):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index)
            with pytest.raises(GraphError):
                engine.cliques_containing_edge(4, 4)
            with pytest.raises(GraphError):
                engine.membership([])
            with pytest.raises(GraphError):
                engine.top_k_largest(0)

    def test_negative_cache_capacity_rejected(self, tmp_path):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            with pytest.raises(ServiceError):
                CliqueQueryEngine(index, cache_entries=-1)


class TestPostingsCache:
    def test_hits_and_misses_counted(self, tmp_path, fresh_registry):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index)
            engine.cliques_containing(1)
            engine.cliques_containing(1)
            engine.cliques_containing(1)
        snapshot = fresh_registry.snapshot()
        assert metrics.counter_value(snapshot, "repro_service_cache_misses_total") == 1
        assert metrics.counter_value(snapshot, "repro_service_cache_hits_total") == 2

    def test_lru_eviction_bounds_entries(self, tmp_path):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index, cache_entries=4)
            for v in range(20):
                engine.cliques_containing(v)
            assert engine.cached_postings <= 4

    def test_zero_capacity_disables_caching(self, tmp_path, fresh_registry):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index, cache_entries=0)
            engine.cliques_containing(1)
            engine.cliques_containing(1)
            assert engine.cached_postings == 0
        snapshot = fresh_registry.snapshot()
        assert metrics.counter_value(snapshot, "repro_service_cache_hits_total") == 0

    def test_invalidate_drops_entries(self, tmp_path):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index)
            engine.cliques_containing(1)
            engine.cliques_containing(2)
            engine.invalidate(1)
            assert engine.cached_postings == 1
            engine.invalidate()
            assert engine.cached_postings == 0

    def test_stale_vertices_bypass_cache(self, tmp_path, fresh_registry):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index)
            engine.cliques_containing(1)
            index.mark_stale(1)
            result = engine.cliques_containing(1)
            assert result.stale
        snapshot = fresh_registry.snapshot()
        # Second query re-read from the index: two misses, zero hits.
        assert metrics.counter_value(snapshot, "repro_service_cache_misses_total") == 2
        assert metrics.counter_value(snapshot, "repro_service_stale_answers_total") == 1


class TestDeduplication:
    def test_identical_concurrent_queries_share_one_execution(
        self, tmp_path, fresh_registry
    ):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index)
            release = threading.Event()
            original = index.postings

            def slow_postings(vertex):
                release.wait(5.0)
                return original(vertex)

            index.postings = slow_postings
            barrier = threading.Barrier(4)
            results = []

            def worker():
                barrier.wait()
                results.append(engine.cliques_containing(7))

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            # Let every thread either claim leadership or park as follower,
            # then open the gate.
            import time
            time.sleep(0.2)
            release.set()
            for t in threads:
                t.join(timeout=10)
            index.postings = original

        assert len(results) == 4
        values = {tuple(r.value) for r in results}
        assert len(values) == 1
        dedup_flags = sorted(r.deduplicated for r in results)
        assert dedup_flags.count(True) >= 1
        snapshot = fresh_registry.snapshot()
        assert metrics.counter_value(
            snapshot, "repro_service_deduplicated_total"
        ) == dedup_flags.count(True)

    def test_list_and_tuple_membership_share_a_flight_key(self, tmp_path):
        from repro.service.engine import _canonical_args

        assert _canonical_args({"vertices": [2, 1]}) == _canonical_args(
            {"vertices": (1, 2)}
        )


class TestTimeouts:
    def test_expired_deadline_raises(self, tmp_path, fresh_registry):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index)
            with pytest.raises(QueryTimeoutError):
                engine.query("cliques_containing", v=1, timeout_seconds=1e-9)
        snapshot = fresh_registry.snapshot()
        assert metrics.counter_value(snapshot, "repro_service_timeouts_total") >= 1

    def test_engine_default_timeout_applies(self, tmp_path):
        _build(tmp_path)
        with CliqueIndex(tmp_path / "idx") as index:
            engine = CliqueQueryEngine(index, timeout_seconds=1e-9)
            with pytest.raises(QueryTimeoutError):
                engine.cliques_containing(1)
            # A per-query override can relax the default.
            result = engine.query("cliques_containing", v=1, timeout_seconds=30.0)
            assert not result.degraded


class TestDegradation:
    def test_fault_on_postings_read_degrades_with_correct_answer(
        self, tmp_path, fresh_registry
    ):
        cliques = _build(tmp_path)
        plan = FaultPlan(
            [FaultRule(operation="pool_read", kind="io_error",
                       path_contains="postings.dat")],
            seed=5,
        )
        with CliqueIndex(tmp_path / "idx", fault_plan=plan) as index:
            engine = CliqueQueryEngine(index)
            result = engine.cliques_containing(3)
            assert result.degraded
            expected = [cid for cid, c in enumerate(cliques) if 3 in c]
            assert result.value == expected
        snapshot = fresh_registry.snapshot()
        assert metrics.counter_value(snapshot, "repro_service_degraded_total") == 1

    def test_corrupt_page_degrades_with_correct_answer(self, tmp_path):
        cliques = _build(tmp_path)
        plan = FaultPlan(
            [FaultRule(operation="pool_read", kind="corrupt",
                       path_contains="postings.dat")],
            seed=5,
        )
        with CliqueIndex(tmp_path / "idx", fault_plan=plan) as index:
            engine = CliqueQueryEngine(index)
            result = engine.cliques_containing(3)
            expected = [cid for cid, c in enumerate(cliques) if 3 in c]
            assert result.value == expected

    def test_every_operation_survives_a_postings_fault(self, tmp_path):
        cliques = _build(tmp_path)
        for op, args in [
            ("cliques_containing", {"v": 2}),
            ("cliques_containing_edge", {"u": cliques[0][0], "v": cliques[0][1]}),
            ("membership", {"vertices": list(cliques[0])}),
        ]:
            plan = FaultPlan(
                [FaultRule(operation="pool_read", kind="io_error",
                           path_contains="postings.dat")],
                seed=5,
            )
            with CliqueIndex(tmp_path / "idx", fault_plan=plan) as index:
                engine = CliqueQueryEngine(index)
                degraded = engine.query(op, **args)
                assert degraded.degraded
            with CliqueIndex(tmp_path / "idx") as clean_index:
                clean = CliqueQueryEngine(clean_index).query(op, **args)
                assert degraded.value == clean.value
