"""The operator summary renderer for index/service snapshots."""

from repro import metrics
from repro.service.stats import (
    has_query_metrics,
    histogram_quantile,
    summarize_query_metrics,
)


def _snapshot_with(run):
    previous = metrics.get_registry()
    registry = metrics.MetricsRegistry()
    metrics.set_registry(registry)
    try:
        run(registry)
        return registry.snapshot()
    finally:
        metrics.set_registry(previous)


class TestSniffing:
    def test_plain_snapshot_has_no_query_metrics(self):
        snapshot = _snapshot_with(
            lambda r: r.counter("repro_mce_cliques_emitted_total", "x").inc()
        )
        assert not has_query_metrics(snapshot)
        assert summarize_query_metrics(snapshot) is None

    def test_service_snapshot_is_recognised(self):
        def run(registry):
            registry.counter(
                "repro_service_degraded_total", "x"
            ).inc(3)

        snapshot = _snapshot_with(run)
        assert has_query_metrics(snapshot)
        summary = summarize_query_metrics(snapshot)
        assert "Clique query service" in summary
        assert "degraded (cold-path) answers" in summary

    def test_per_op_query_counts_are_listed(self):
        def run(registry):
            registry.counter(
                "repro_service_queries_total", "x", labels={"op": "stats"}
            ).inc(2)
            registry.counter(
                "repro_service_queries_total", "x", labels={"op": "membership"}
            ).inc(5)

        summary = summarize_query_metrics(_snapshot_with(run))
        assert "queries[membership]" in summary
        assert "queries[stats]" in summary


class TestHistogramQuantile:
    def test_absent_histogram_is_none(self):
        snapshot = _snapshot_with(lambda r: None)
        assert histogram_quantile(snapshot, "repro_service_query_seconds", 0.5) is None

    def test_empty_histogram_is_none(self):
        snapshot = _snapshot_with(
            lambda r: r.histogram("repro_service_query_seconds", "x")
        )
        assert histogram_quantile(snapshot, "repro_service_query_seconds", 0.5) is None

    def test_quantile_is_the_conservative_bucket_bound(self):
        def run(registry):
            histogram = registry.histogram(
                "repro_service_query_seconds", "x", buckets=(0.001, 0.01, 0.1)
            )
            for _ in range(9):
                histogram.observe(0.0005)
            histogram.observe(0.05)

        snapshot = _snapshot_with(run)
        assert histogram_quantile(snapshot, "repro_service_query_seconds", 0.5) == 0.001
        assert histogram_quantile(snapshot, "repro_service_query_seconds", 0.95) == 0.1

    def test_overflow_bucket_is_infinite(self):
        def run(registry):
            registry.histogram(
                "repro_service_query_seconds", "x", buckets=(0.001,)
            ).observe(5.0)

        snapshot = _snapshot_with(run)
        assert histogram_quantile(
            snapshot, "repro_service_query_seconds", 0.99
        ) == float("inf")
