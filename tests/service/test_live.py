"""CliqueQueryEngine over a LiveCliqueStore: overlay serving, precise
staleness, generation-fenced caching, change subscriptions end to end,
and the stale-flag → cache-bypass contract under concurrent updates."""

import threading

import pytest

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.dynamic.maintainer import HStarMaintainer
from repro.errors import GraphError, ServiceError
from repro.graph.adjacency import AdjacencyGraph
from repro.index import CliqueIndex, build_index
from repro.live import LiveCliqueStore, LiveIngestor
from repro.live.deltas import ADD, REMOVE, CliqueDelta
from repro.service import CliqueQueryClient, CliqueQueryEngine, CliqueQueryServer
from repro.service.engine import _Deadline


def add(*vertices):
    return CliqueDelta(ADD, tuple(sorted(vertices)))


def remove(*vertices):
    return CliqueDelta(REMOVE, tuple(sorted(vertices)))


@pytest.fixture()
def live(tmp_path):
    store = LiveCliqueStore.initialize(
        tmp_path / "live", [(0, 1, 2), (2, 3), (4, 5)]
    )
    yield store
    store.close()


class TestLiveEngine:
    def test_engine_detects_live_store(self, live, tmp_path):
        engine = CliqueQueryEngine(live)
        assert engine.live
        build_index([(0, 1)], tmp_path / "frozen")
        with CliqueIndex(tmp_path / "frozen") as frozen:
            assert not CliqueQueryEngine(frozen).live

    def test_answers_reflect_applied_updates(self, live):
        engine = CliqueQueryEngine(live)
        before = engine.cliques_containing(3)
        assert not before.stale
        live.apply_deltas([remove(2, 3), add(2, 3, 9)])
        after = engine.cliques_containing(3)
        assert after.stale  # precise: this answer is delta-overlaid
        assert [live.clique(cid) for cid in after.value] == [(2, 3, 9)]

    def test_delta_hook_invalidates_only_touched_vertices(self, live):
        engine = CliqueQueryEngine(live)
        engine.cliques_containing(0)
        engine.cliques_containing(4)
        assert engine.cached_postings == 2
        live.apply_deltas([add(4, 6)])
        # Vertex 0 stays cached; 4 and 6 were dropped by the apply hook.
        with engine._io_lock:
            assert 0 in engine._postings_cache
            assert 4 not in engine._postings_cache

    def test_compaction_flushes_cache_and_refreshes_token(self, live):
        engine = CliqueQueryEngine(live)
        live.apply_deltas([add(6, 7)])
        engine.cliques_containing(0)
        assert engine.cached_postings >= 1
        live.compact()
        assert engine.cached_postings == 0
        # Fresh queries answer from the new generation's id space.
        ids = engine.cliques_containing(6).value
        assert [live.clique(cid) for cid in ids] == [(6, 7)]
        assert not engine.cliques_containing(6).stale

    def test_stale_cache_entry_from_old_generation_never_served(self, live):
        engine = CliqueQueryEngine(live)
        engine.cliques_containing(2)
        # Simulate the hook being late: put the old entry back by hand,
        # then compact.  The generation token must fence it out.
        with engine._io_lock:
            stale_entry = engine._postings_cache[2]
        live.apply_deltas([add(2, 40)])
        live.compact()
        with engine._io_lock:
            engine._postings_cache[2] = stale_entry
        ids = engine.cliques_containing(2).value
        answers = sorted(live.clique(cid) for cid in ids)
        assert (2, 40) in answers

    def test_cold_path_uses_live_id_space(self, live):
        # Overlay ids live past the base's num_cliques; the degraded
        # cold path must accept them.
        live.apply_deltas([add(8, 9)])
        engine = CliqueQueryEngine(live)
        overlay_id = live.postings(8)[0]
        assert overlay_id >= 3  # past the three base cliques
        value, stale = engine._cold_path(
            "clique", {"clique_id": overlay_id}, _Deadline(None)
        )
        assert value == [8, 9]
        with pytest.raises(GraphError):
            engine._cold_path(
                "clique", {"clique_id": live.id_space}, _Deadline(None)
            )

    def test_subscribe_requires_live_store(self, tmp_path):
        build_index([(0, 1)], tmp_path / "frozen")
        with CliqueIndex(tmp_path / "frozen") as frozen:
            engine = CliqueQueryEngine(frozen)
            with pytest.raises(ServiceError):
                engine.subscribe(0, lambda event: None)
            with pytest.raises(ServiceError):
                engine.unsubscribe(1)

    def test_engine_subscription_round_trip(self, live):
        engine = CliqueQueryEngine(live)
        events = []
        token = engine.subscribe(9, events.append)
        live.apply_deltas([add(9, 10)])
        assert [e.kind for e in events] == ["clique_added"]
        assert engine.unsubscribe(token)


class TestServerSubscriptions:
    def test_subscribe_receives_pushed_events(self, live):
        engine = CliqueQueryEngine(live)
        with CliqueQueryServer(engine) as server:
            host, port = server.address
            with CliqueQueryClient(host, port, timeout_seconds=10.0) as client:
                sid = client.subscribe(7)
                live.apply_deltas([add(7, 8)])
                event = client.next_event(timeout=10.0)
                assert event is not None
                assert event["subscription"] == sid
                assert event["event"] == "clique_added"
                assert event["clique"] == [7, 8]
                assert event["vertex"] == 7
                assert event["seq"] == 1

    def test_events_interleaved_with_requests_never_lost(self, live):
        engine = CliqueQueryEngine(live)
        with CliqueQueryServer(engine) as server:
            host, port = server.address
            with CliqueQueryClient(host, port, timeout_seconds=10.0) as client:
                client.subscribe(7)
                live.apply_deltas([add(7, 8)])
                live.apply_deltas([add(7, 9)])
                # Issue queries while events sit in the socket; the client
                # must route them aside, not misparse them as responses.
                for _ in range(3):
                    assert client.stats().result["num_cliques"] >= 3
                got = {tuple(client.next_event(timeout=10.0)["clique"])
                       for _ in range(2)}
                assert got == {(7, 8), (7, 9)}

    def test_unsubscribe_stops_events(self, live):
        engine = CliqueQueryEngine(live)
        with CliqueQueryServer(engine) as server:
            host, port = server.address
            with CliqueQueryClient(host, port, timeout_seconds=10.0) as client:
                sid = client.subscribe(7)
                assert client.unsubscribe(sid)
                assert not client.unsubscribe(sid)  # unknown now
                live.apply_deltas([add(7, 8)])
                assert client.next_event(timeout=0.3) is None
                assert live.subscription_count == 0

    def test_disconnect_cancels_subscriptions(self, live):
        engine = CliqueQueryEngine(live)
        with CliqueQueryServer(engine) as server:
            host, port = server.address
            client = CliqueQueryClient(host, port, timeout_seconds=10.0)
            client.subscribe(7)
            deadline = threading.Event()
            assert live.subscription_count == 1
            client.close()
            for _ in range(500):
                if live.subscription_count == 0:
                    break
                deadline.wait(0.01)
            assert live.subscription_count == 0

    def test_subscribe_rejected_over_frozen_index(self, tmp_path):
        build_index([(0, 1)], tmp_path / "frozen")
        with CliqueIndex(tmp_path / "frozen") as frozen:
            engine = CliqueQueryEngine(frozen)
            with CliqueQueryServer(engine) as server:
                host, port = server.address
                with CliqueQueryClient(host, port, timeout_seconds=10.0) as client:
                    with pytest.raises(ServiceError):
                        client.subscribe(0)
                    # The connection survives the rejected subscribe.
                    assert client.cliques_containing(0).result == [0]


class TestStaleCacheBypassUnderConcurrentUpdates:
    """Satellite (c): hammer the engine from reader threads while a
    writer applies edge events; no answer may come from a cached posting
    whose vertex went stale.

    The writer only ever *adds* cliques containing the probed vertices
    (each fresh partner vertex creates one new maximal clique and
    removes none), so the number of cliques containing a probe vertex
    grows monotonically.  Clique *ids* are renumbered by compaction, so
    the readers assert monotonicity of the answer count — an answer
    served from a stale cached posting after fresher state was written
    would regress the count.  The final answers reconcile exactly with
    ground truth.
    """

    PROBES = (0, 1, 2)
    ROUNDS = 120

    def test_no_stale_cached_answer_served(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live", [(0, 1, 2)])
        engine = CliqueQueryEngine(store, cache_entries=64)
        triangle = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        maintainer = HStarMaintainer(triangle)
        ingestor = LiveIngestor(maintainer, store)
        stop = threading.Event()
        failures: list[str] = []

        def reader(vertex: int) -> None:
            high_water = 0
            while not stop.is_set():
                result = engine.cliques_containing(vertex)
                ids = result.value
                if len(set(ids)) != len(ids):
                    failures.append(f"vertex {vertex}: duplicate ids {ids}")
                    return
                if len(ids) < high_water:
                    failures.append(
                        f"vertex {vertex}: answer shrank from {high_water} "
                        f"to {len(ids)} cliques — stale cached posting served"
                    )
                    return
                high_water = len(ids)

        threads = [
            threading.Thread(target=reader, args=(vertex,))
            for vertex in self.PROBES for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        try:
            # Writer: fresh vertices pair up with the probed ones, so
            # every event adds a clique containing a probe vertex and
            # flips it stale (until compaction folds the tail).
            fresh = 100
            for round_number in range(self.ROUNDS):
                probe = self.PROBES[round_number % len(self.PROBES)]
                ingestor.insert_edge(probe, fresh)
                fresh += 1
                if round_number % 40 == 39:
                    store.compact()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        assert not failures, failures[0]

        # Final reconciliation: engine answers equal ground truth.
        for probe in self.PROBES:
            ids = engine.cliques_containing(probe).value
            answers = sorted(store.clique(cid) for cid in ids)
            truth = sorted(
                tuple(sorted(c))
                for c in set(tomita_maximal_cliques(maintainer.graph))
                if probe in c
            )
            assert answers == truth
        store.close()
