"""CliqueQueryServer: wire protocol and the concurrent service contract.

The contract test is the acceptance criterion from the index/service
issue: eight concurrent clients issue mixed queries against a server
whose index has a fault plan injecting page read errors; every request
must complete (as a success or a typed error), every successful answer
must match a brute-force scan even when degraded, and the server/engine
metric counters must reconcile exactly with the request counts.  The
observed p50/p95 latency is recorded under the ``service_contract`` key
of ``BENCH_index.json``.
"""

import json
import random
import socket
import threading
from pathlib import Path

import pytest

from repro import metrics
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import QueryTimeoutError, ServiceError, ServiceUnavailableError
from repro.faults import FaultPlan, FaultRule
from repro.index import CliqueIndex, build_index
from repro.service import CliqueQueryClient, CliqueQueryEngine, CliqueQueryServer

from tests.helpers import seeded_gnp

BENCH_PATH = Path(__file__).resolve().parent.parent.parent / "BENCH_index.json"

NUM_CLIENTS = 8
REQUESTS_PER_CLIENT = 40


@pytest.fixture()
def fresh_registry():
    previous = metrics.get_registry()
    registry = metrics.MetricsRegistry()
    metrics.set_registry(registry)
    yield registry
    metrics.set_registry(previous)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A graph, its canonical cliques, and a built index directory."""
    graph = seeded_gnp(40, 0.3, seed=3)
    cliques = sorted(tuple(sorted(c)) for c in set(tomita_maximal_cliques(graph)))
    directory = tmp_path_factory.mktemp("served") / "idx"
    build_index(cliques, directory)
    return graph, cliques, directory


def _serving(directory, fault_plan=None, cache_entries=1024):
    index = CliqueIndex(directory, fault_plan=fault_plan)
    engine = CliqueQueryEngine(index, cache_entries=cache_entries)
    server = CliqueQueryServer(engine).start()
    return index, server


class TestWireProtocol:
    def test_every_operation_round_trips(self, corpus):
        _graph, cliques, directory = corpus
        index, server = _serving(directory)
        try:
            host, port = server.address
            with CliqueQueryClient(host, port) as client:
                assert client.cliques_containing(0).result == list(
                    index.cliques_containing(0)
                )
                u, v = cliques[0][0], cliques[0][1]
                assert client.cliques_containing_edge(u, v).result == list(
                    index.cliques_containing_edge(u, v)
                )
                assert client.clique(0).result == list(cliques[0])
                assert client.membership(cliques[0]).result == [0]
                assert client.top_k_largest(3).result == [
                    list(c) for c in index.top_k_largest(3)
                ]
                assert client.stats().result["num_cliques"] == len(cliques)
        finally:
            server.stop()
            index.close()

    def test_errors_are_responses_not_dropped_connections(self, corpus):
        _graph, _cliques, directory = corpus
        index, server = _serving(directory)
        try:
            host, port = server.address
            with CliqueQueryClient(host, port) as client:
                with pytest.raises(ServiceError, match="unknown operation"):
                    client.request("nonsense")
                with pytest.raises(ServiceError):
                    client.cliques_containing_edge(4, 4)
                # The connection survives both errors.
                assert client.stats().result["num_cliques"] > 0
        finally:
            server.stop()
            index.close()

    def test_malformed_json_gets_an_error_line(self, corpus):
        _graph, _cliques, directory = corpus
        index, server = _serving(directory)
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"this is not json\n")
                reply = json.loads(sock.makefile("rb").readline())
            assert reply["ok"] is False
            assert "error" in reply
        finally:
            server.stop()
            index.close()

    def test_timeout_surfaces_as_typed_client_error(self, corpus):
        _graph, _cliques, directory = corpus
        index, server = _serving(directory)
        try:
            host, port = server.address
            with CliqueQueryClient(host, port) as client:
                with pytest.raises(QueryTimeoutError):
                    client.cliques_containing(1, timeout=1e-9)
        finally:
            server.stop()
            index.close()

    def test_connecting_to_a_dead_port_raises_unavailable(self, corpus):
        _graph, _cliques, directory = corpus
        index, server = _serving(directory)
        host, port = server.address
        server.stop()
        index.close()
        with pytest.raises(ServiceUnavailableError):
            CliqueQueryClient(host, port, timeout_seconds=0.5)


class TestServiceContract:
    def test_concurrent_clients_survive_page_read_faults(
        self, corpus, fresh_registry
    ):
        graph, cliques, directory = corpus
        vertices = sorted(graph.vertices())

        # Transient page read failures on the postings file, spread across
        # the run; the cache is disabled so queries keep hitting the pool
        # and stay eligible to trip them.
        plan = FaultPlan(
            [
                FaultRule(
                    operation="pool_read",
                    kind="io_error",
                    path_contains="postings.dat",
                    after=i * 11,
                )
                for i in range(8)
            ],
            seed=9,
        )
        index, server = _serving(directory, fault_plan=plan, cache_entries=0)
        outcomes = []
        outcomes_lock = threading.Lock()

        def expected_for(op, args):
            if op == "cliques_containing":
                v = args["v"]
                return [cid for cid, c in enumerate(cliques) if v in c]
            if op == "cliques_containing_edge":
                u, v = args["u"], args["v"]
                return [cid for cid, c in enumerate(cliques) if u in c and v in c]
            if op == "membership":
                wanted = set(args["vertices"])
                return [cid for cid, c in enumerate(cliques) if wanted <= set(c)]
            if op == "clique":
                return list(cliques[args["clique_id"]])
            if op == "top_k_largest":
                ranked = sorted(cliques, key=lambda c: (-len(c), c))
                return [list(c) for c in ranked[: args["k"]]]
            return None  # stats: checked structurally

        def run_client(client_id):
            rng = random.Random(1000 + client_id)
            host, port = server.address
            with CliqueQueryClient(host, port) as client:
                for i in range(REQUESTS_PER_CLIENT):
                    if i % 10 == 9:
                        # A deliberately invalid request, unique per
                        # client/slot so it never deduplicates with a
                        # concurrent leader that might fail differently.
                        bad = 10_000 + client_id * 100 + i
                        try:
                            client.cliques_containing_edge(bad, bad)
                        except ServiceError:
                            with outcomes_lock:
                                outcomes.append(("error", False, 0.0))
                        continue
                    op = rng.choice(
                        [
                            "cliques_containing",
                            "cliques_containing_edge",
                            "membership",
                            "clique",
                            "top_k_largest",
                            "stats",
                        ]
                    )
                    if op == "cliques_containing":
                        args = {"v": rng.choice(vertices)}
                    elif op == "cliques_containing_edge":
                        u, v = rng.sample(vertices, 2)
                        args = {"u": u, "v": v}
                    elif op == "membership":
                        base = rng.choice(cliques)
                        size = rng.randint(1, min(3, len(base)))
                        args = {"vertices": sorted(rng.sample(base, size))}
                    elif op == "clique":
                        args = {"clique_id": rng.randrange(len(cliques))}
                    elif op == "top_k_largest":
                        args = {"k": rng.randint(1, 5)}
                    else:
                        args = {}
                    response = client.request(op, **args)
                    if op == "stats":
                        correct = response.result["num_cliques"] == len(cliques)
                    else:
                        correct = response.result == expected_for(op, args)
                    with outcomes_lock:
                        outcomes.append(
                            ("ok" if correct else "wrong",
                             response.degraded,
                             response.elapsed_ms)
                        )

        threads = [
            threading.Thread(target=run_client, args=(cid,))
            for cid in range(NUM_CLIENTS)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads)
        finally:
            server.stop()
            index.close()

        total = NUM_CLIENTS * REQUESTS_PER_CLIENT
        invalid = NUM_CLIENTS * (REQUESTS_PER_CLIENT // 10)

        # Every request completed, as a success or a typed error.
        assert len(outcomes) == total
        kinds = [kind for kind, _degraded, _ms in outcomes]
        assert kinds.count("wrong") == 0
        assert kinds.count("error") == invalid
        assert kinds.count("ok") == total - invalid

        # The fault plan actually bit: some answers came off the cold path.
        degraded = sum(1 for _kind, was_degraded, _ms in outcomes if was_degraded)
        assert degraded >= 1

        # Metrics reconcile with what the clients sent and received.
        snapshot = fresh_registry.snapshot()

        def count(name):
            return metrics.counter_value(snapshot, name)

        assert count("repro_server_requests_total") == total
        assert (
            count("repro_server_responses_ok_total")
            + count("repro_server_responses_error_total")
            == total
        )
        assert count("repro_server_responses_error_total") == invalid
        assert count("repro_server_connections_total") == NUM_CLIENTS
        # Each successful response was computed once (queries_total) or
        # shared from an identical in-flight computation (deduplicated).
        assert (
            count("repro_service_queries_total")
            + count("repro_service_deduplicated_total")
            == total - invalid
        )
        assert count("repro_service_errors_total") == invalid
        assert count("repro_service_degraded_total") == degraded

        # Record the observed service latency for the benchmark ledger.
        latencies = sorted(ms for kind, _d, ms in outcomes if kind == "ok")
        p50 = latencies[len(latencies) // 2]
        p95 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.95))]
        ledger = {}
        if BENCH_PATH.exists():
            ledger = json.loads(BENCH_PATH.read_text())
        ledger["service_contract"] = {
            "clients": NUM_CLIENTS,
            "requests": total,
            "degraded_responses": degraded,
            "p50_ms": round(p50, 3),
            "p95_ms": round(p95, 3),
        }
        BENCH_PATH.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")
