"""Serving-tier overload safety: admission, bounded lines, drain, client
backoff and the circuit breaker.

Each test pins one behavior from the robustness issue: requests past the
admission limit are *shed* with a typed reply (never queued unboundedly),
oversized/malformed request lines get bounded typed errors on a surviving
connection, ``health``/``ready`` bypass admission, drain finishes
in-flight work and refuses new work, a slow subscription consumer is
disconnected instead of blocking the store's writer, and the client
turns dead peers into typed errors, retries idempotent queries with
backoff, and fails fast once its breaker trips.
"""

import json
import socket
import threading
import time

import pytest

from repro import metrics
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import (
    CircuitOpenError,
    ServerOverloadedError,
    ServiceUnavailableError,
)
from repro.index import CliqueIndex, build_index
from repro.service import (
    CircuitBreaker,
    CliqueQueryClient,
    CliqueQueryEngine,
    CliqueQueryServer,
    RetryPolicy,
)

from tests.helpers import seeded_gnp


@pytest.fixture()
def fresh_registry():
    previous = metrics.get_registry()
    registry = metrics.MetricsRegistry()
    metrics.set_registry(registry)
    yield registry
    metrics.set_registry(previous)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    graph = seeded_gnp(30, 0.3, seed=11)
    cliques = sorted(tuple(sorted(c)) for c in set(tomita_maximal_cliques(graph)))
    directory = tmp_path_factory.mktemp("robust") / "idx"
    build_index(cliques, directory)
    return graph, cliques, directory


class _GatedEngine(CliqueQueryEngine):
    """An engine whose queries block on a gate — deterministic overload."""

    def __init__(self, index, gate, **kwargs):
        super().__init__(index, **kwargs)
        self._gate = gate

    def query(self, op, timeout_seconds=None, **args):
        self._gate.wait(10.0)
        return super().query(op, timeout_seconds=timeout_seconds, **args)


def _raw_request(host, port, payload, timeout=5.0):
    """One request on a throwaway socket; returns the decoded reply."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(json.dumps(payload).encode() + b"\n")
        handle = sock.makefile("rb")
        line = handle.readline()
    return json.loads(line)


def _no_retry_client(host, port, **kw):
    return CliqueQueryClient(
        host, port, timeout_seconds=5.0,
        retry_policy=RetryPolicy(max_attempts=1), **kw,
    )


class TestAdmissionControl:
    def test_excess_requests_are_shed_with_retry_after(self, corpus, fresh_registry):
        _graph, _cliques, directory = corpus
        gate = threading.Event()
        with CliqueIndex(directory) as index:
            engine = _GatedEngine(index, gate)
            server = CliqueQueryServer(
                engine, max_in_flight=2, retry_after_ms=75.0
            ).start()
            host, port = server.address
            try:
                replies = []
                lock = threading.Lock()

                def one(request_id):
                    reply = _raw_request(
                        host, port,
                        {"id": request_id, "op": "stats", "args": {}},
                    )
                    with lock:
                        replies.append(reply)

                threads = [
                    threading.Thread(target=one, args=(i,)) for i in range(6)
                ]
                for thread in threads:
                    thread.start()
                # Wait until the admission slots are saturated, then let
                # the admitted pair finish.
                deadline = time.monotonic() + 5.0
                while server.in_flight < 2 and time.monotonic() < deadline:
                    time.sleep(0.005)
                while True:
                    with lock:
                        if len(replies) >= 4:
                            break
                    assert time.monotonic() < deadline, "sheds never arrived"
                    time.sleep(0.005)
                gate.set()
                for thread in threads:
                    thread.join(timeout=10.0)
                shed = [r for r in replies if r.get("overloaded")]
                ok = [r for r in replies if r.get("ok")]
                assert len(replies) == 6
                assert len(ok) == 2, replies
                assert len(shed) == 4
                for reply in shed:
                    assert reply["ok"] is False
                    assert reply["retry_after_ms"] == 75.0
                assert metrics.counter_value(
                    fresh_registry.snapshot(), "repro_server_shed_total"
                ) == 4
            finally:
                gate.set()
                server.stop()

    def test_health_and_ready_bypass_admission(self, corpus):
        _graph, _cliques, directory = corpus
        gate = threading.Event()
        with CliqueIndex(directory) as index:
            engine = _GatedEngine(index, gate)
            server = CliqueQueryServer(engine, max_in_flight=1).start()
            host, port = server.address
            try:
                blocker = threading.Thread(
                    target=_raw_request,
                    args=(host, port, {"id": 1, "op": "stats", "args": {}}),
                )
                blocker.start()
                deadline = time.monotonic() + 5.0
                while server.in_flight < 1 and time.monotonic() < deadline:
                    time.sleep(0.005)
                health = _raw_request(host, port, {"id": 2, "op": "health"})
                ready = _raw_request(host, port, {"id": 3, "op": "ready"})
                assert health["ok"] and health["result"]["status"] == "ok"
                assert health["result"]["in_flight"] == 1
                assert health["result"]["max_in_flight"] == 1
                assert ready["ok"] and ready["result"]["ready"] is True
            finally:
                gate.set()
                blocker.join(timeout=10.0)
                server.stop()

    def test_client_raises_typed_overload_with_hint(self, corpus):
        _graph, _cliques, directory = corpus
        gate = threading.Event()
        with CliqueIndex(directory) as index:
            engine = _GatedEngine(index, gate)
            server = CliqueQueryServer(
                engine, max_in_flight=1, retry_after_ms=30.0
            ).start()
            host, port = server.address
            try:
                blocker = threading.Thread(
                    target=_raw_request,
                    args=(host, port, {"id": 1, "op": "stats", "args": {}}),
                )
                blocker.start()
                deadline = time.monotonic() + 5.0
                while server.in_flight < 1 and time.monotonic() < deadline:
                    time.sleep(0.005)
                with _no_retry_client(host, port) as client:
                    with pytest.raises(ServerOverloadedError) as info:
                        client.stats()
                assert info.value.retry_after_ms == 30.0
            finally:
                gate.set()
                blocker.join(timeout=10.0)
                server.stop()


class TestBoundedRequests:
    def _serving(self, directory, **kw):
        index = CliqueIndex(directory)
        engine = CliqueQueryEngine(index)
        server = CliqueQueryServer(engine, **kw).start()
        return index, server

    def test_oversized_line_gets_typed_error_and_connection_survives(
        self, corpus, fresh_registry
    ):
        _graph, _cliques, directory = corpus
        index, server = self._serving(directory, max_request_bytes=512)
        host, port = server.address
        try:
            with socket.create_connection((host, port), timeout=5.0) as sock:
                handle = sock.makefile("rb")
                sock.sendall(b'{"id": 1, "op": "stats", "args": {"x": "'
                             + b"A" * 4096 + b'"}}\n')
                reply = json.loads(handle.readline())
                assert reply["ok"] is False
                assert "512" in reply["error"]
                # Same connection, valid follow-up: still answered.
                sock.sendall(b'{"id": 2, "op": "stats", "args": {}}\n')
                reply = json.loads(handle.readline())
                assert reply["ok"] is True and reply["id"] == 2
            assert metrics.counter_value(
                fresh_registry.snapshot(),
                "repro_server_oversized_requests_total",
            ) == 1
        finally:
            server.stop()
            index.close()

    def test_malformed_json_gets_bounded_typed_error(self, corpus):
        _graph, _cliques, directory = corpus
        index, server = self._serving(directory)
        host, port = server.address
        try:
            with socket.create_connection((host, port), timeout=5.0) as sock:
                handle = sock.makefile("rb")
                for bad in (b"not json at all\n", b'[1, 2, 3]\n', b'"string"\n'):
                    sock.sendall(bad)
                    reply = json.loads(handle.readline())
                    assert reply["ok"] is False
                    assert isinstance(reply["error"], str)
                sock.sendall(b'{"id": 9, "op": "stats", "args": {}}\n')
                assert json.loads(handle.readline())["ok"] is True
        finally:
            server.stop()
            index.close()


class TestGracefulDrain:
    def test_drain_finishes_in_flight_and_sheds_new(self, corpus):
        _graph, _cliques, directory = corpus
        gate = threading.Event()
        with CliqueIndex(directory) as index:
            engine = _GatedEngine(index, gate)
            server = CliqueQueryServer(engine, max_in_flight=4).start()
            host, port = server.address
            in_flight_reply = {}

            def slow():
                in_flight_reply.update(_raw_request(
                    host, port, {"id": 1, "op": "stats", "args": {}},
                    timeout=15.0,
                ))

            worker = threading.Thread(target=slow)
            worker.start()
            deadline = time.monotonic() + 5.0
            while server.in_flight < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            # Open a second connection BEFORE drain stops the listener.
            straggler = socket.create_connection((host, port), timeout=5.0)
            drained = {}

            def drain():
                drained["clean"] = server.drain(10.0)

            drainer = threading.Thread(target=drain)
            drainer.start()
            deadline = time.monotonic() + 5.0
            while not server.draining and time.monotonic() < deadline:
                time.sleep(0.005)
            try:
                straggler.sendall(b'{"id": 2, "op": "stats", "args": {}}\n')
                reply = json.loads(straggler.makefile("rb").readline())
                assert reply["ok"] is False
                assert reply["overloaded"] is True and reply["draining"] is True
            finally:
                straggler.close()
            gate.set()
            worker.join(timeout=10.0)
            drainer.join(timeout=15.0)
            assert drained["clean"] is True
            assert in_flight_reply.get("ok") is True, in_flight_reply
            # The listener is gone: new connections are refused.
            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=1.0)

    def test_drain_with_no_traffic_is_immediate(self, corpus):
        _graph, _cliques, directory = corpus
        with CliqueIndex(directory) as index:
            server = CliqueQueryServer(CliqueQueryEngine(index)).start()
            started = time.monotonic()
            assert server.drain(5.0) is True
            assert time.monotonic() - started < 2.0


class TestClientResilience:
    def test_dead_port_raises_unavailable_not_hang(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        started = time.monotonic()
        with pytest.raises(ServiceUnavailableError):
            CliqueQueryClient("127.0.0.1", port, timeout_seconds=0.5)
        assert time.monotonic() - started < 5.0

    def test_unresponsive_server_times_out_typed(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        try:
            client = CliqueQueryClient(
                host, port, timeout_seconds=0.3,
                retry_policy=RetryPolicy(max_attempts=2, base_sleep=0.01),
            )
            started = time.monotonic()
            with pytest.raises(ServiceUnavailableError):
                client.stats()
            assert time.monotonic() - started < 5.0
            client.close()
        finally:
            listener.close()

    def test_retry_reconnects_after_server_restart(self, corpus):
        """A request that hits a dead connection retries onto a live one."""
        _graph, cliques, directory = corpus
        index = CliqueIndex(directory)
        engine = CliqueQueryEngine(index)
        server = CliqueQueryServer(engine).start()
        host, port = server.address
        client = CliqueQueryClient(
            host, port, timeout_seconds=5.0,
            retry_policy=RetryPolicy(max_attempts=3, base_sleep=0.01),
        )
        try:
            assert client.stats().result["num_cliques"] == len(cliques)
            # Kill every live connection server-side; the client's next
            # request sees the dead socket and transparently reconnects.
            with server._handlers_lock:
                handlers = list(server._handlers)
            for handler in handlers:
                handler.disconnect()
            time.sleep(0.05)
            assert client.stats().result["num_cliques"] == len(cliques)
        finally:
            client.close()
            server.stop()
            index.close()


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_sleep=0.1, multiplier=2.0, max_sleep=0.5, jitter=0.0)
        assert policy.sleep_before(1) == pytest.approx(0.1)
        assert policy.sleep_before(2) == pytest.approx(0.2)
        assert policy.sleep_before(3) == pytest.approx(0.4)
        assert policy.sleep_before(4) == pytest.approx(0.5)  # capped

    def test_server_hint_overrides_computed_base(self):
        policy = RetryPolicy(base_sleep=1.0, jitter=0.0)
        assert policy.sleep_before(1, hint_ms=25.0) == pytest.approx(0.025)

    def test_jitter_spreads_the_herd(self):
        policy = RetryPolicy(base_sleep=0.1, jitter=0.5)
        draws = {policy.sleep_before(1) for _ in range(32)}
        assert len(draws) > 1
        assert all(0.05 <= d <= 0.15 for d in draws)


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_seconds=0.1)
        breaker.before_request()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.before_request()
        time.sleep(0.15)
        breaker.before_request()  # the half-open probe slot
        assert breaker.state == "half_open"
        # A second caller while the probe is out still fails fast.
        with pytest.raises(CircuitOpenError):
            breaker.before_request()
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.before_request()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_seconds=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.08)
        breaker.before_request()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.before_request()

    def test_breaker_fails_fast_without_network(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_seconds=60.0)
        with pytest.raises(ServiceUnavailableError):
            CliqueQueryClient(
                "127.0.0.1", port, timeout_seconds=0.3, breaker=breaker
            )
        assert breaker.state == "open"
        started = time.monotonic()
        with pytest.raises(CircuitOpenError):
            CliqueQueryClient(
                "127.0.0.1", port, timeout_seconds=30.0, breaker=breaker
            )
        assert time.monotonic() - started < 0.2  # no connect attempt

    def test_overload_sheds_do_not_trip_the_breaker(self, corpus):
        _graph, _cliques, directory = corpus
        gate = threading.Event()
        with CliqueIndex(directory) as index:
            engine = _GatedEngine(index, gate)
            server = CliqueQueryServer(engine, max_in_flight=1).start()
            host, port = server.address
            try:
                blocker = threading.Thread(
                    target=_raw_request,
                    args=(host, port, {"id": 1, "op": "stats", "args": {}}),
                )
                blocker.start()
                deadline = time.monotonic() + 5.0
                while server.in_flight < 1 and time.monotonic() < deadline:
                    time.sleep(0.005)
                breaker = CircuitBreaker(failure_threshold=2)
                client = _no_retry_client(host, port, breaker=breaker)
                for _ in range(5):
                    with pytest.raises(ServerOverloadedError):
                        client.stats()
                assert breaker.state == "closed"
                client.close()
            finally:
                gate.set()
                blocker.join(timeout=10.0)
                server.stop()


class TestSlowConsumer:
    def test_overflowing_event_queue_disconnects_the_consumer(
        self, tmp_path, fresh_registry
    ):
        from repro.live import LiveCliqueStore
        from repro.live.deltas import CliqueDelta

        store = LiveCliqueStore.initialize(tmp_path / "store")
        engine = CliqueQueryEngine(store)
        server = CliqueQueryServer(engine, event_queue_limit=4).start()
        host, port = server.address
        client = _no_retry_client(host, port)
        try:
            client.subscribe(1)
            with server._handlers_lock:
                (handler,) = server._handlers
            # Prime one event so the sender thread exists (its lazy start
            # takes the write lock, which we are about to hold).
            store.apply_deltas([CliqueDelta("add", (1, 99))])
            deadline = time.monotonic() + 5.0
            while handler._sender is None and time.monotonic() < deadline:
                time.sleep(0.005)
            assert handler._sender is not None
            # Jam the sender (it blocks on the write lock mid-send), then
            # push past the queue limit: the store's writer must never
            # block — the slow consumer is disconnected instead.
            with handler._write_lock:
                for n in range(12):
                    store.apply_deltas(
                        [CliqueDelta("add", (1, 100 + n))]
                    )
            deadline = time.monotonic() + 5.0
            while not handler._closing and time.monotonic() < deadline:
                time.sleep(0.01)
            assert handler._closing, "slow consumer was never disconnected"
            assert metrics.counter_value(
                fresh_registry.snapshot(),
                "repro_server_slow_consumer_disconnects_total",
            ) >= 1
        finally:
            client.close()
            server.stop()
            store.close()
