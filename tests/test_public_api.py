"""Tests for the top-level public API surface."""

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_key_classes_exported(self):
        for name in (
            "AdjacencyGraph",
            "DiskGraph",
            "ExtMCE",
            "ExtMCEConfig",
            "MemoryModel",
            "StarGraph",
            "StixDynamicMCE",
        ):
            assert name in repro.__all__

    def test_error_hierarchy(self):
        assert issubclass(repro.MemoryBudgetExceeded, repro.ReproError)
        assert issubclass(repro.StorageFormatError, repro.StorageError)
        assert issubclass(repro.EdgeNotFoundError, repro.GraphError)

    def test_quickstart_snippet(self, tmp_path):
        graph = repro.AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        disk = repro.DiskGraph.create(tmp_path / "graph.bin", graph)
        cliques = sorted(
            sorted(c)
            for c in repro.ExtMCE(
                disk, repro.ExtMCEConfig(workdir=tmp_path)
            ).enumerate_cliques()
        )
        assert cliques == [[0, 1, 2], [2, 3]]

    def test_docstring_mentions_paper(self):
        assert "SIGMOD 2010" in repro.__doc__
