"""Unit tests for the reduction rules, lower bound, and map mechanics."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, ReductionError
from repro.graph.adjacency import AdjacencyGraph
from repro.reduce import (
    LEVELS,
    FoldRecord,
    ReductionMap,
    clique_lower_bound,
    peel_cap,
    reduce_graph,
    validate_reduction,
)
from tests.helpers import cliques_of, figure1_graph, seeded_gnp


def complete_graph(n: int) -> AdjacencyGraph:
    return AdjacencyGraph.from_edges(
        [(u, v) for u in range(n) for v in range(u + 1, n)], vertices=range(n)
    )


class TestLevels:
    def test_levels_tuple(self):
        assert LEVELS == ("off", "prune", "full")

    @pytest.mark.parametrize("level", LEVELS)
    def test_validate_accepts_known(self, level):
        assert validate_reduction(level) == level

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown reduction level"):
            validate_reduction("aggressive")


class TestLowerBound:
    def test_empty_graph(self):
        assert clique_lower_bound(AdjacencyGraph()) == 0

    def test_single_vertex(self):
        assert clique_lower_bound(AdjacencyGraph.from_edges([], vertices=[7])) == 1

    def test_complete_graph_is_tight(self):
        assert clique_lower_bound(complete_graph(9)) == 9

    def test_figure1(self):
        # Figure 1's maximum clique is {a, b, c, w, x} (size 5); the
        # greedy bound grows from the deepest core, so it finds it.
        assert clique_lower_bound(figure1_graph()) == 5

    def test_never_exceeds_degeneracy_plus_one(self):
        from repro.graph.cores import degeneracy

        for seed in range(10):
            graph = seeded_gnp(30, 0.3, seed)
            assert clique_lower_bound(graph) <= degeneracy(graph) + 1

    def test_peel_cap_clamps(self):
        assert peel_cap(2) == 2  # floor: isolated/pendant rules always on
        assert peel_cap(6) == 5
        assert peel_cap(200) == 8  # constant clamp keeps peeling linear
        assert peel_cap(200, limit=16) == 16


class TestPeelRule:
    def test_star_graph_fully_peels(self):
        star = AdjacencyGraph.from_edges([(0, i) for i in range(1, 8)])
        reduction = reduce_graph(star, "prune")
        assert reduction.reduced.num_vertices == 0
        assert cliques_of(reduction.map.direct) == cliques_of(
            [{0, i} for i in range(1, 8)]
        )

    def test_path_graph_suppresses_inner_stubs(self):
        # Peeling d's neighbor c records {d} as extendable; the direct
        # candidate {d} that peeling d would otherwise emit is suppressed.
        path = AdjacencyGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        reduction = reduce_graph(path, "prune")
        assert cliques_of(reduction.map.direct) == cliques_of(
            [{0, 1}, {1, 2}, {2, 3}]
        )
        assert reduction.map.direct_suppressed > 0

    def test_dense_graph_is_untouched_by_prune(self):
        graph = complete_graph(12)
        reduction = reduce_graph(graph, "prune")
        assert reduction.map.is_identity
        assert reduction.reduced.num_vertices == 12

    def test_peel_respects_the_cap(self):
        # A 5-clique with lower bound 5 → cap 4: the whole clique peels
        # (degrees are 4); with an attached K10 the bound is 10 → cap 8,
        # and only the sparse tail goes.
        graph = complete_graph(10)
        for v in (20, 21, 22):
            graph.add_vertex(v)
            graph.add_edge(0, v)
        reduction = reduce_graph(graph, "prune")
        assert set(reduction.map.peeled) == {20, 21, 22}
        assert reduction.reduced.num_vertices == 10


class TestFoldRule:
    def test_complete_graph_folds_to_one_vertex(self):
        reduction = reduce_graph(complete_graph(15), "full")
        assert reduction.reduced.num_vertices == 1
        assert len(reduction.map.folds) == 14
        assert min(v for v in range(15)) not in {
            record.vertex for record in reduction.map.folds
        }

    def test_disjoint_blocks_fold_independently(self):
        # Two disjoint K12 blocks: each folds to its own representative,
        # and expanding the two singleton cliques restores both blocks.
        from repro.baselines.bron_kerbosch import tomita_maximal_cliques

        graph = AdjacencyGraph.from_edges(
            [(u, v) for u in range(12) for v in range(u + 1, 12)]
            + [(u, v) for u in range(20, 32) for v in range(u + 1, 32)]
        )
        reduction = reduce_graph(graph, "full")
        assert reduction.reduced.num_vertices == 2
        stream = reduction.map.reconstruct(
            tomita_maximal_cliques(reduction.reduced)
        )
        assert cliques_of(stream) == {
            frozenset(range(12)),
            frozenset(range(20, 32)),
        }

    def test_prune_level_never_folds(self):
        reduction = reduce_graph(complete_graph(15), "prune")
        assert reduction.map.folds == ()

    def test_fold_preserves_defective_block_cliques(self):
        from repro.baselines.bron_kerbosch import tomita_maximal_cliques
        from repro.core.result import canonical_clique_order

        graph = complete_graph(12)
        graph.remove_edge(2, 7)  # one defect → two maximal 11-cliques
        reference = canonical_clique_order(tomita_maximal_cliques(graph))
        reduction = reduce_graph(graph, "full")
        assert reduction.map.folds
        assert reduction.reduced.num_vertices < 12
        lifted = reduction.map.reconstruct(
            tomita_maximal_cliques(reduction.reduced)
        )
        assert canonical_clique_order(lifted) == reference


class TestReductionOff:
    def test_off_is_identity(self):
        graph = seeded_gnp(20, 0.3, 1)
        reduction = reduce_graph(graph, "off")
        assert reduction.map.is_identity
        assert reduction.reduced.num_vertices == graph.num_vertices
        assert reduction.reduced.num_edges == graph.num_edges
        # The working copy is independent of the input.
        reduction.reduced.remove_vertex(0)
        assert 0 in graph


class TestMapValidation:
    def _map(self, **overrides):
        fields = dict(
            level="full",
            lower_bound=3,
            peeled=(5,),
            folds=(FoldRecord(vertex=2, representative=1),),
            suppressions=(frozenset({1, 2}),),
            direct=(frozenset({5, 1}),),
            original_vertices=6,
            original_edges=8,
            reduced_vertices=4,
            reduced_edges=5,
        )
        fields.update(overrides)
        return ReductionMap(**fields)

    def test_valid_map_constructs(self):
        assert self._map().vertices_removed == 2

    def test_double_peel_rejected(self):
        with pytest.raises(ReductionError, match="twice"):
            self._map(peeled=(5, 5), original_vertices=7)

    def test_self_fold_rejected(self):
        with pytest.raises(ReductionError, match="onto itself"):
            self._map(folds=(FoldRecord(vertex=2, representative=2),))

    def test_fold_of_removed_vertex_rejected(self):
        with pytest.raises(ReductionError, match="twice"):
            self._map(
                folds=(
                    FoldRecord(vertex=2, representative=1),
                    FoldRecord(vertex=2, representative=3),
                ),
                original_vertices=7,
            )

    def test_dead_representative_rejected(self):
        with pytest.raises(ReductionError, match="already"):
            self._map(
                folds=(
                    FoldRecord(vertex=2, representative=1),
                    FoldRecord(vertex=3, representative=2),
                ),
                original_vertices=7,
            )

    def test_vertex_accounting_must_replay(self):
        with pytest.raises(ReductionError, match="accounting"):
            self._map(reduced_vertices=3)

    def test_fold_records_in_prune_map_rejected(self):
        with pytest.raises(ReductionError, match="prune-level"):
            self._map(level="prune")

    def test_direct_without_peeled_vertex_rejected(self):
        with pytest.raises(ReductionError, match="no peeled vertex"):
            self._map(direct=(frozenset({1, 3}),))

    def test_expansion_collision_is_typed(self):
        rmap = self._map()
        with pytest.raises(ReductionError, match="already contains"):
            list(rmap.reconstruct([frozenset({1, 2})], emit_direct=False))


class TestEnumeratorIntegration:
    def test_tomita_reduction_kwarg(self):
        from repro.baselines.bron_kerbosch import tomita_maximal_cliques

        graph = figure1_graph()
        reference = cliques_of(tomita_maximal_cliques(graph))
        for level in ("prune", "full"):
            assert cliques_of(
                tomita_maximal_cliques(graph, reduction=level)
            ) == reference

    def test_bitset_reduction_kwarg(self):
        from repro.baselines.bron_kerbosch import tomita_maximal_cliques
        from repro.kernel import CompactGraph, maximal_cliques_bitset

        graph = figure1_graph()
        compact = CompactGraph.from_adjacency(graph)
        reference = cliques_of(tomita_maximal_cliques(graph))
        for level in ("prune", "full"):
            assert cliques_of(
                maximal_cliques_bitset(compact, reduction=level)
            ) == reference

    def test_bitset_reduction_rejects_subset_mask(self):
        from repro.kernel import CompactGraph, maximal_cliques_bitset

        compact = CompactGraph.from_adjacency(figure1_graph())
        with pytest.raises(GraphError, match="subset_mask"):
            list(maximal_cliques_bitset(compact, subset_mask=3, reduction="full"))

    def test_extmce_config_rejects_unknown_level(self, tmp_path):
        from repro.core.extmce import ExtMCE, ExtMCEConfig
        from repro.storage.diskgraph import DiskGraph

        disk = DiskGraph.create(tmp_path / "g.bin", figure1_graph())
        with pytest.raises(GraphError, match="unknown reduction level"):
            ExtMCE(disk, ExtMCEConfig(workdir=tmp_path, reduction="bogus"))


class TestMetrics:
    def test_reduce_metrics_populate(self, live_metrics):
        from repro import metrics

        star = AdjacencyGraph.from_edges([(0, i) for i in range(1, 6)])
        reduction = reduce_graph(star, "full")
        list(reduction.map.reconstruct([]))
        snapshot = live_metrics.snapshot()
        assert metrics.counter_value(
            snapshot, "repro_reduce_vertices_removed_total"
        ) == 6
        assert metrics.counter_value(snapshot, "repro_reduce_runs_total") == 1
        assert metrics.counter_value(
            snapshot, "repro_reduce_cliques_direct_total"
        ) == len(reduction.map.direct)
