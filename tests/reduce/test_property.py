"""Property tests: reduction never changes the maximal-clique stream.

The contract under test is the headline guarantee of :mod:`repro.reduce`:
for every graph and every reduction level, enumerating the reduced graph
and lifting through the reconstruction map yields *exactly* the maximal
cliques of the original graph — same set, no duplicates, no impostors.
The sweep runs well over 200 seeded graphs from every generator family
plus hypothesis-driven arbitrary small graphs and the classic edge-case
shapes (empty, star, complete, disconnected).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.core.result import canonical_clique_order
from repro.generators import (
    fringed_clique_communities,
    powerlaw_cluster_graph,
    rank_power_law_graph,
)
from repro.graph.adjacency import AdjacencyGraph
from repro.reduce import ReductionMap, reduce_graph
from tests.helpers import cliques_of, seeded_gnp, small_graphs

LEVELS = ("prune", "full")


def assert_reduction_exact(graph, level):
    """Reduced-then-lifted stream equals the reference, duplicate-free."""
    reference = canonical_clique_order(tomita_maximal_cliques(graph))
    lifted = list(tomita_maximal_cliques(graph, reduction=level))
    assert len(lifted) == len(set(lifted)), "reduction introduced duplicates"
    assert canonical_clique_order(lifted) == reference


# ---------------------------------------------------------------------------
# Seeded generator sweep: 4 families x 25+ seeds x 2 levels > 200 graphs
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("seed", range(25))
def test_gnp_sweep(seed, level):
    n = 12 + (seed % 5) * 6  # 12..36 vertices
    p = 0.1 + (seed % 4) * 0.15  # 0.10..0.55
    assert_reduction_exact(seeded_gnp(n, p, seed), level)


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("seed", range(25))
def test_powerlaw_sweep(seed, level):
    m = 1 + seed % 4
    graph = powerlaw_cluster_graph(30 + seed, m, 0.5, seed=seed)
    assert_reduction_exact(graph, level)


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("seed", range(25))
def test_community_sweep(seed, level):
    graph = fringed_clique_communities(
        40 + 2 * seed,
        seed,
        core_fraction=0.4 + (seed % 3) * 0.2,
        community_min=4,
        community_max=8,
        defects=seed % 3,
    )
    assert_reduction_exact(graph, level)


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("seed", range(25))
def test_rank_law_sweep(seed, level):
    exponent = -0.5 - (seed % 4) * 0.25
    graph = rank_power_law_graph(24 + seed, exponent, seed=seed)
    assert_reduction_exact(graph, level)


# ---------------------------------------------------------------------------
# Hypothesis: arbitrary small graphs
# ---------------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(graph=small_graphs())
def test_arbitrary_small_graphs(graph):
    for level in LEVELS:
        assert_reduction_exact(graph, level)


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("level", LEVELS)
class TestEdgeCases:
    def test_empty_graph(self, level):
        assert_reduction_exact(AdjacencyGraph(), level)

    def test_isolated_vertices_only(self, level):
        graph = AdjacencyGraph.from_edges([], vertices=range(7))
        assert_reduction_exact(graph, level)
        assert cliques_of(tomita_maximal_cliques(graph, reduction=level)) == {
            frozenset({v}) for v in range(7)
        }

    def test_single_edge(self, level):
        assert_reduction_exact(AdjacencyGraph.from_edges([(0, 1)]), level)

    @pytest.mark.parametrize("leaves", [1, 2, 9])
    def test_star(self, level, leaves):
        star = AdjacencyGraph.from_edges([(0, i) for i in range(1, leaves + 1)])
        assert_reduction_exact(star, level)

    @pytest.mark.parametrize("n", [3, 8, 9, 10, 13])
    def test_complete(self, level, n):
        graph = AdjacencyGraph.from_edges(
            [(u, v) for u in range(n) for v in range(u + 1, n)]
        )
        assert_reduction_exact(graph, level)
        assert cliques_of(tomita_maximal_cliques(graph, reduction=level)) == {
            frozenset(range(n))
        }

    def test_disconnected_components(self, level):
        # A triangle, a path, an isolated vertex and a K5 — all disjoint.
        edges = [(0, 1), (1, 2), (0, 2), (10, 11), (11, 12)]
        edges += [(u, v) for u in range(20, 25) for v in range(u + 1, 25)]
        graph = AdjacencyGraph.from_edges(edges, vertices=[*range(13), *range(20, 25)])
        assert_reduction_exact(graph, level)

    def test_long_path_and_cycle(self, level):
        path = AdjacencyGraph.from_edges([(i, i + 1) for i in range(12)])
        assert_reduction_exact(path, level)
        cycle = AdjacencyGraph.from_edges(
            [(i, (i + 1) % 12) for i in range(12)]
        )
        assert_reduction_exact(cycle, level)


# ---------------------------------------------------------------------------
# Map round-trip: to_spec/from_spec is lossless
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("seed", range(8))
def test_spec_round_trip(seed, level):
    graph = fringed_clique_communities(50, seed, community_min=4, community_max=8)
    rmap = reduce_graph(graph, level).map
    clone = ReductionMap.from_spec(rmap.to_spec())
    assert clone.to_spec() == rmap.to_spec()
    assert clone.peeled == rmap.peeled
    assert clone.folds == rmap.folds
    assert clone.suppressions == rmap.suppressions
    assert clone.direct == rmap.direct
    # The clone replays a stream identically.
    reduced = reduce_graph(graph, level).reduced
    stream = list(tomita_maximal_cliques(reduced))
    assert list(clone.reconstruct(stream)) == list(rmap.reconstruct(stream))
