"""Corruption and fault-injection tests for the reduction map.

The damage contract: a persisted reconstruction map that has been
tampered with — any byte, any field — must surface as a typed
:class:`~repro.errors.ReproError` at load or replay time, never as a
silently wrong clique stream.  The ``"reduce"`` fault site of
:mod:`repro.faults` injects the same failure modes through the official
seam, including into a full ``ExtMCE`` run.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.errors import ReductionError, ReproError, StorageIOError
from repro.faults import FaultPlan, FaultRule
from repro.generators import fringed_clique_communities
from repro.reduce import (
    ReductionMap,
    load_reduction_map,
    reduce_graph,
    save_reduction_map,
)


@pytest.fixture(scope="module")
def reduction():
    graph = fringed_clique_communities(
        80, seed=3, core_fraction=0.6, community_min=12, community_max=16
    )
    result = reduce_graph(graph, "full")
    assert result.reduced.num_vertices > 0
    assert not result.map.is_identity
    assert result.map.folds and result.map.peeled and result.map.direct
    return result


@pytest.fixture()
def saved_map(reduction, tmp_path):
    path = tmp_path / "reduction_map.json"
    save_reduction_map(reduction.map, path)
    return path


def reference_stream(reduction, rmap):
    from repro.baselines.bron_kerbosch import tomita_maximal_cliques

    return list(rmap.reconstruct(tomita_maximal_cliques(reduction.reduced)))


# ---------------------------------------------------------------------------
# Blind byte-flip fuzz: every byte of the file, two flip patterns
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mask", [0x01, 0x20])
def test_every_byte_flip_is_detected_or_harmless(reduction, saved_map, mask):
    pristine = saved_map.read_bytes()
    expected = reference_stream(reduction, load_reduction_map(saved_map))
    undetected = []
    for position in range(len(pristine)):
        damaged = bytearray(pristine)
        damaged[position] ^= mask
        saved_map.write_bytes(bytes(damaged))
        try:
            rmap = load_reduction_map(saved_map)
        except ReproError:
            continue  # typed rejection: the contract holds
        # A flip the loader accepts must be behaviourally invisible.
        try:
            stream = reference_stream(reduction, rmap)
        except ReproError:
            continue
        if stream != expected:
            undetected.append(position)
    saved_map.write_bytes(pristine)
    assert not undetected, f"byte flips changed the stream: {undetected}"


def test_truncation_is_detected(saved_map):
    pristine = saved_map.read_bytes()
    for cut in (0, 1, len(pristine) // 2, len(pristine) - 1):
        saved_map.write_bytes(pristine[:cut])
        with pytest.raises(ReproError):
            load_reduction_map(saved_map)


def test_missing_file_is_typed(tmp_path):
    with pytest.raises(StorageIOError):
        load_reduction_map(tmp_path / "never_written.json")


# ---------------------------------------------------------------------------
# Structured tampering: recompute the CRC so only replay validation stands
# ---------------------------------------------------------------------------
def tamper(path, mutate):
    """Apply ``mutate`` to the document and re-seal it with a fresh CRC."""
    document = json.loads(path.read_text())
    document.pop("crc32")
    mutate(document)
    document["crc32"] = zlib.crc32(
        json.dumps(document, sort_keys=True).encode("utf-8")
    )
    path.write_text(json.dumps(document, sort_keys=True, separators=(",", ":")))


@pytest.mark.parametrize(
    "label, mutate",
    [
        ("version", lambda d: d.update(version=99)),
        ("level", lambda d: d.update(level="turbo")),
        ("double-peel", lambda d: d["peeled"].append(d["peeled"][0])),
        ("self-fold", lambda d: d["folds"].append([5, 5])),
        ("dead-representative", lambda d: d["folds"].append([7, d["folds"][0][0]])),
        ("fold-in-prune", lambda d: d.update(level="prune")),
        ("empty-suppression", lambda d: d["suppressions"].append([])),
        ("empty-direct", lambda d: d["direct"].append([])),
        ("alien-direct", lambda d: d["direct"].append([-1, -2])),
        ("vertex-accounting", lambda d: d.update(reduced_vertices=d["reduced_vertices"] + 1)),
        ("edge-accounting", lambda d: d.update(reduced_edges=d["original_edges"] + 1)),
        ("negative-count", lambda d: d.update(lower_bound=-3)),
        ("missing-field", lambda d: d.pop("peeled")),
        ("wrong-type", lambda d: d.update(folds="nope")),
    ],
)
def test_structural_tampering_is_rejected(saved_map, label, mutate):
    tamper(saved_map, mutate)
    with pytest.raises(ReductionError):
        load_reduction_map(saved_map)


def test_crc_is_actually_checked(saved_map):
    document = json.loads(saved_map.read_text())
    document["crc32"] = (document["crc32"] + 1) & 0xFFFFFFFF
    saved_map.write_text(json.dumps(document, sort_keys=True, separators=(",", ":")))
    with pytest.raises(ReductionError, match="integrity"):
        load_reduction_map(saved_map)


def test_non_object_document_is_rejected(saved_map):
    saved_map.write_text("[1, 2, 3]")
    with pytest.raises(ReductionError, match="JSON object"):
        load_reduction_map(saved_map)


def test_foreign_stream_trips_expansion_guard(reduction):
    # A stream that already contains a folded vertex cannot be expanded;
    # the wrapper must refuse rather than emit a malformed clique.
    record = reduction.map.folds[0]
    poisoned = [frozenset({record.vertex, record.representative})]
    with pytest.raises(ReductionError, match="already contains"):
        list(reduction.map.reconstruct(poisoned, emit_direct=False))


# ---------------------------------------------------------------------------
# The "reduce" fault site
# ---------------------------------------------------------------------------
class TestReduceFaultSite:
    def test_io_error_on_save(self, reduction, tmp_path):
        plan = FaultPlan([FaultRule("reduce", "io_error")], seed=1)
        with pytest.raises(StorageIOError, match="injected"):
            save_reduction_map(reduction.map, tmp_path / "m.json", fault_plan=plan)

    def test_corrupt_on_save_is_caught_at_load(self, reduction, tmp_path):
        path = tmp_path / "m.json"
        plan = FaultPlan([FaultRule("reduce", "corrupt")], seed=2)
        save_reduction_map(reduction.map, path, fault_plan=plan)
        with pytest.raises(ReproError):
            load_reduction_map(path)

    def test_corrupt_on_load(self, reduction, saved_map):
        plan = FaultPlan([FaultRule("reduce", "corrupt")], seed=3)
        with pytest.raises(ReproError):
            load_reduction_map(saved_map, fault_plan=plan)

    def test_io_error_on_load(self, saved_map):
        plan = FaultPlan([FaultRule("reduce", "io_error")], seed=4)
        with pytest.raises(StorageIOError, match="injected"):
            load_reduction_map(saved_map, fault_plan=plan)

    def test_latency_fault_is_harmless(self, reduction, saved_map):
        plan = FaultPlan(
            [FaultRule("reduce", "latency", latency_seconds=0.01, max_firings=None)],
            seed=5,
        )
        rmap = load_reduction_map(saved_map, fault_plan=plan)
        assert reference_stream(reduction, rmap) == reference_stream(
            reduction, load_reduction_map(saved_map)
        )

    def test_extmce_surfaces_save_fault(self, tmp_path):
        from repro.core.extmce import ExtMCE, ExtMCEConfig
        from repro.storage.diskgraph import DiskGraph

        graph = fringed_clique_communities(40, seed=1, community_min=4, community_max=8)
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        config = ExtMCEConfig(
            workdir=tmp_path / "run",
            checkpoint=True,
            reduction="full",
            fault_plan=FaultPlan([FaultRule("reduce", "io_error")], seed=6),
        )
        with pytest.raises(StorageIOError, match="injected"):
            list(ExtMCE(disk, config).enumerate_cliques())

    def test_storage_faults_stay_armed_on_the_reduced_graph(self, tmp_path):
        """The reduced DiskGraph must inherit the input's fault plan.

        The rewrite in ``_drive_maybe_reduced`` replaces the enumeration
        source, so a reduced run whose rewritten graph dropped the plan
        would silently disarm every storage fault site for the rest of
        the run.  The contract is the same as unreduced: the fault
        surfaces typed, the checkpoint survives, and a resumed run
        splices to the exact stream.
        """
        from repro.core.extmce import ExtMCE, ExtMCEConfig
        from repro.storage.diskgraph import DiskGraph

        graph = fringed_clique_communities(
            80, seed=3, core_fraction=0.6, community_min=12, community_max=16
        )
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        expected = list(
            ExtMCE(
                disk, ExtMCEConfig(workdir=tmp_path / "ok", reduction="full")
            ).enumerate_cliques()
        )

        plan = FaultPlan(
            [FaultRule("write", "io_error", after=2, path_contains="partitions")],
            seed=7,
        )
        faulty = DiskGraph.open(tmp_path / "g.bin", fault_plan=plan)
        work = tmp_path / "faulted"
        emitted = []
        with pytest.raises(StorageIOError, match="injected"):
            for clique in ExtMCE(
                faulty,
                ExtMCEConfig(workdir=work, reduction="full", checkpoint=True),
            ).enumerate_cliques():
                emitted.append(clique)
        checkpoint = json.loads((work / "checkpoint.json").read_text())
        resumed = list(
            ExtMCE.resume(
                work, ExtMCEConfig(workdir=work, reduction="full")
            ).enumerate_cliques()
        )
        assert emitted[: checkpoint["cliques_emitted"]] + resumed == expected
