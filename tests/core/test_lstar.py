"""Tests for L*-graph extraction (Definition 10)."""

import pytest

from repro.core.lstar import extract_lstar_graph
from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.diskgraph import DiskGraph

from tests.helpers import seeded_gnp


@pytest.fixture
def residual_disk(tmp_path):
    return DiskGraph.create(tmp_path / "r.bin", seeded_gnp(50, 0.15, seed=6))


class TestSelection:
    def test_core_degree_mass_respects_target(self, residual_disk):
        target = 40
        star = extract_lstar_graph(residual_disk, target, seed=1)
        mass = sum(len(star.neighbor_lists[v]) for v in star.core)
        max_single = max(len(star.neighbor_lists[v]) for v in star.core)
        assert mass <= target + max_single

    def test_takes_everything_when_target_covers_graph(self, residual_disk):
        star = extract_lstar_graph(residual_disk, 10**9, seed=1)
        assert len(star.core) == residual_disk.num_vertices

    def test_never_empty(self, residual_disk):
        star = extract_lstar_graph(residual_disk, 1, seed=1)
        assert star.core

    def test_deterministic_per_seed(self, residual_disk):
        a = extract_lstar_graph(residual_disk, 40, seed=5)
        b = extract_lstar_graph(residual_disk, 40, seed=5)
        assert a.core == b.core

    def test_different_seeds_differ(self, residual_disk):
        cores = {
            extract_lstar_graph(residual_disk, 40, seed=s).core for s in range(8)
        }
        assert len(cores) > 1

    def test_negative_target_rejected(self, residual_disk):
        with pytest.raises(GraphError):
            extract_lstar_graph(residual_disk, -1)

    def test_empty_residual_rejected(self, tmp_path):
        disk = DiskGraph.create(tmp_path / "e.bin", AdjacencyGraph())
        with pytest.raises(GraphError):
            extract_lstar_graph(disk, 10)


class TestStructure:
    def test_neighbor_lists_match_residual(self, residual_disk):
        star = extract_lstar_graph(residual_disk, 60, seed=2)
        full = residual_disk.to_adjacency_graph()
        for v in star.core:
            assert star.neighbor_lists[v] == full.neighbors(v)

    def test_original_degrees_captured(self, tmp_path):
        g = seeded_gnp(20, 0.3, seed=1)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        residual = disk.rewrite_without(set(range(5)), tmp_path / "r.bin")
        star = extract_lstar_graph(residual, 10**9, seed=0)
        for v in star.core:
            assert star.original_degree(v) == g.degree(v)

    def test_isolated_vertices_included_in_full_take(self, tmp_path):
        g = AdjacencyGraph.from_edges([(0, 1)], vertices=[7, 8])
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        star = extract_lstar_graph(disk, 10**9, seed=0)
        assert {7, 8} <= star.core
