"""Tests for Algorithm 1 (one-scan h-vertex extraction)."""

from hypothesis import given, settings

from repro.core.hindex import (
    compute_h_index_reference,
    compute_h_vertices,
    compute_h_vertices_of_graph,
)
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.memory import MemoryModel

from tests.helpers import figure1_graph, small_graphs, FIGURE1_ID


class TestReference:
    def test_hirsch_example(self):
        assert compute_h_index_reference([10, 8, 5, 4, 3]) == 4

    def test_all_equal(self):
        assert compute_h_index_reference([3, 3, 3]) == 3

    def test_empty(self):
        assert compute_h_index_reference([]) == 0

    def test_all_zero(self):
        assert compute_h_index_reference([0, 0, 0]) == 0

    def test_single_large(self):
        assert compute_h_index_reference([100]) == 1


class TestAlgorithm1:
    def test_figure1_h_is_5(self):
        result = compute_h_vertices_of_graph(figure1_graph())
        assert result.h == 5
        assert result.h_vertices == {
            FIGURE1_ID[c] for c in "abcde"
        }

    def test_neighbor_lists_are_full_adjacency(self):
        g = figure1_graph()
        result = compute_h_vertices_of_graph(g)
        for v in result.h_vertices:
            assert result.neighbor_lists[v] == g.neighbors(v)

    def test_star_size_matches_definition(self):
        g = figure1_graph()
        result = compute_h_vertices_of_graph(g)
        # |G_H*| = edges incident to at least one h-vertex = 8 + 12 = 20
        assert result.star_size_edges == 20

    def test_empty_input(self):
        result = compute_h_vertices([])
        assert result.h == 0
        assert result.h_vertices == frozenset()

    def test_isolated_vertices_give_h_zero(self):
        g = AdjacencyGraph.from_edges([], vertices=range(5))
        assert compute_h_vertices_of_graph(g).h == 0

    @settings(max_examples=80)
    @given(small_graphs())
    def test_h_matches_sort_based_reference(self, g):
        result = compute_h_vertices_of_graph(g)
        assert result.h == compute_h_index_reference(g.degree_sequence())

    @settings(max_examples=60)
    @given(small_graphs())
    def test_definition1_invariants(self, g):
        result = compute_h_vertices_of_graph(g)
        h = result.h
        assert len(result.h_vertices) == h
        for v in result.h_vertices:
            assert g.degree(v) >= h
        for v in g:
            if v not in result.h_vertices:
                assert g.degree(v) <= h


class TestMemoryCharging:
    def test_heap_space_charged_and_released(self):
        g = figure1_graph()
        memory = MemoryModel()
        result = compute_h_vertices_of_graph(g, memory=memory)
        assert memory.in_use_units == 0
        # Peak must cover the surviving h-vertices and their lists.
        expected_floor = sum(1 + len(nbrs) for nbrs in result.neighbor_lists.values())
        assert memory.peak_units >= expected_floor

    def test_streamed_records_accepted(self):
        records = [(0, [1, 2]), (1, [0, 2]), (2, [0, 1])]
        result = compute_h_vertices(records)
        assert result.h == 2
        assert len(result.h_vertices) == 2
