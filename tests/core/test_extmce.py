"""End-to-end tests for ExtMCE (Algorithm 3, Theorem 5).

The golden invariant: on any graph, ExtMCE's output equals the in-memory
oracle's — soundness (no non-maximal or duplicate cliques) and
completeness (nothing missing).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.core.result import CliqueCollector
from repro.errors import MemoryBudgetExceeded
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.diskgraph import DiskGraph
from repro.storage.memory import MemoryModel

from tests.helpers import cliques_of, figure1_graph, seeded_gnp, small_graphs


def run_extmce(graph, tmp_path, seed=0, **config_kwargs):
    disk = DiskGraph.create(tmp_path / "input.bin", graph)
    config = ExtMCEConfig(workdir=tmp_path / "work", seed=seed, **config_kwargs)
    algo = ExtMCE(disk, config)
    emissions = list(algo.enumerate_cliques())
    return emissions, algo


class TestGoldenEquivalence:
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(small_graphs(), st.integers(0, 100))
    def test_matches_oracle_on_arbitrary_graphs(self, tmp_path, g, seed):
        emissions, _ = run_extmce(g, tmp_path, seed=seed)
        assert len(emissions) == len(set(emissions)), "duplicate emission"
        assert cliques_of(emissions) == cliques_of(tomita_maximal_cliques(g))

    def test_figure1(self, tmp_path):
        g = figure1_graph()
        emissions, _ = run_extmce(g, tmp_path)
        assert cliques_of(emissions) == cliques_of(tomita_maximal_cliques(g))

    def test_medium_random(self, tmp_path, medium_random):
        emissions, _ = run_extmce(medium_random, tmp_path)
        assert cliques_of(emissions) == cliques_of(tomita_maximal_cliques(medium_random))

    def test_scale_free(self, tmp_path):
        from repro.generators import powerlaw_cluster_graph

        g = powerlaw_cluster_graph(400, 4, 0.7, seed=12)
        emissions, _ = run_extmce(g, tmp_path)
        assert cliques_of(emissions) == cliques_of(tomita_maximal_cliques(g))

    @pytest.mark.parametrize("seed", range(5))
    def test_seed_independence_of_result(self, tmp_path, seed):
        g = seeded_gnp(45, 0.2, seed=3)
        emissions, _ = run_extmce(g, tmp_path, seed=seed)
        assert cliques_of(emissions) == cliques_of(tomita_maximal_cliques(g))


class TestEdgeCases:
    def test_empty_graph(self, tmp_path):
        emissions, _ = run_extmce(AdjacencyGraph(), tmp_path)
        assert emissions == []

    def test_all_isolated_vertices(self, tmp_path):
        g = AdjacencyGraph.from_edges([], vertices=range(4))
        emissions, _ = run_extmce(g, tmp_path)
        assert cliques_of(emissions) == {frozenset({v}) for v in range(4)}

    def test_single_edge(self, tmp_path):
        g = AdjacencyGraph.from_edges([(0, 1)])
        emissions, _ = run_extmce(g, tmp_path)
        assert cliques_of(emissions) == {frozenset({0, 1})}

    def test_one_big_clique(self, tmp_path):
        g = AdjacencyGraph.from_edges(
            [(u, v) for u in range(8) for v in range(u + 1, 8)]
        )
        emissions, _ = run_extmce(g, tmp_path)
        assert cliques_of(emissions) == {frozenset(range(8))}

    def test_isolated_vertex_with_positive_original_degree_not_emitted(self, tmp_path):
        # After the triangle {0,1,2} is consumed, vertex 3 (pendant on 2)
        # becomes isolated in the residual graph but must not be emitted
        # as a singleton because d_G(3) = 1.
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        emissions, _ = run_extmce(g, tmp_path)
        assert frozenset({3}) not in cliques_of(emissions)
        assert cliques_of(emissions) == cliques_of(tomita_maximal_cliques(g))

    def test_mixed_isolated_and_connected(self, tmp_path):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)], vertices=[9, 10])
        emissions, _ = run_extmce(g, tmp_path)
        assert cliques_of(emissions) == {
            frozenset({0, 1, 2}), frozenset({9}), frozenset({10})
        }


class TestConfigurationKnobs:
    def test_generic_enumeration_matches(self, tmp_path, medium_random):
        fast, _ = run_extmce(medium_random, tmp_path, use_structure=True)
        tmp2 = tmp_path / "generic"
        tmp2.mkdir()
        slow, _ = run_extmce(medium_random, tmp2, use_structure=False)
        assert cliques_of(fast) == cliques_of(slow)

    def test_cleanup_off_still_correct(self, tmp_path, medium_random):
        emissions, _ = run_extmce(medium_random, tmp_path, hashtable_cleanup=False)
        assert cliques_of(emissions) == cliques_of(
            tomita_maximal_cliques(medium_random)
        )

    def test_memory_budget_shrinks_but_stays_correct(self, tmp_path):
        g = seeded_gnp(60, 0.25, seed=7)
        disk = DiskGraph.create(tmp_path / "input.bin", g)
        memory = MemoryModel()
        config = ExtMCEConfig(workdir=tmp_path / "w", memory_budget_units=2000)
        algo = ExtMCE(disk, config, memory=memory)
        emissions = list(algo.enumerate_cliques())
        assert cliques_of(emissions) == cliques_of(tomita_maximal_cliques(g))

    def test_impossibly_small_budget_raises(self, tmp_path):
        g = seeded_gnp(30, 0.4, seed=1)
        disk = DiskGraph.create(tmp_path / "input.bin", g)
        config = ExtMCEConfig(workdir=tmp_path / "w", memory_budget_units=2)
        with pytest.raises(MemoryBudgetExceeded):
            list(ExtMCE(disk, config).enumerate_cliques())

    def test_partition_fraction_variants(self, tmp_path, medium_random):
        for index, fraction in enumerate((0.25, 2.0)):
            sub = tmp_path / f"pf{index}"
            sub.mkdir()
            emissions, _ = run_extmce(
                medium_random, sub, partition_fraction=fraction
            )
            assert cliques_of(emissions) == cliques_of(
                tomita_maximal_cliques(medium_random)
            )


class TestReport:
    def test_report_counts_and_recursions(self, tmp_path, medium_random):
        emissions, algo = run_extmce(medium_random, tmp_path)
        report = algo.report
        assert report.total_cliques == len(emissions)
        assert report.num_recursions == len(report.steps) >= 1
        assert report.steps[0].core_size >= 1
        assert report.estimated_recursions > 0

    def test_peak_memory_recorded(self, tmp_path, medium_random):
        _, algo = run_extmce(medium_random, tmp_path)
        assert algo.report.peak_memory_units > 0
        assert algo.memory.in_use_units == 0  # everything released

    def test_io_counters_recorded(self, tmp_path, medium_random):
        _, algo = run_extmce(medium_random, tmp_path)
        assert algo.report.sequential_scans >= algo.report.num_recursions
        assert algo.report.pages_read > 0

    def test_first_step_fraction_in_unit_range(self, tmp_path, medium_random):
        _, algo = run_extmce(medium_random, tmp_path)
        assert 0.0 <= algo.report.first_step_time_fraction <= 1.0

    def test_run_with_sink(self, tmp_path, medium_random):
        disk = DiskGraph.create(tmp_path / "input.bin", medium_random)
        collector = CliqueCollector()
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w"))
        report = algo.run(sink=collector)
        assert len(collector.cliques) == report.total_cliques


class TestWorkdirHygiene:
    def test_input_file_never_modified(self, tmp_path, medium_random):
        disk = DiskGraph.create(tmp_path / "input.bin", medium_random)
        before = disk.path.read_bytes()
        list(ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w")).enumerate_cliques())
        assert disk.path.read_bytes() == before

    def test_temporary_workdir_cleaned_up(self, tmp_path, medium_random):
        import glob

        disk = DiskGraph.create(tmp_path / "input.bin", medium_random)
        algo = ExtMCE(disk)  # no workdir: uses a TemporaryDirectory
        list(algo.enumerate_cliques())
        assert not glob.glob("/tmp/extmce_*/residual_*.bin")


class TestDeterminism:
    def test_same_seed_same_emission_order(self, tmp_path, medium_random):
        first, _ = run_extmce(medium_random, tmp_path / "a", seed=7)
        second, _ = run_extmce(medium_random, tmp_path / "b", seed=7)
        assert first == second  # identical order, not just identical set

    def test_reports_reproducible(self, tmp_path, medium_random):
        _, algo_a = run_extmce(medium_random, tmp_path / "a", seed=7)
        _, algo_b = run_extmce(medium_random, tmp_path / "b", seed=7)
        stats_a = [(s.core_size, s.star_edges, s.cliques_emitted) for s in algo_a.report.steps]
        stats_b = [(s.core_size, s.star_edges, s.cliques_emitted) for s in algo_b.report.steps]
        assert stats_a == stats_b
