"""Tests for Algorithm 2 (M1/M2/M3, Lemmas 4-6, Example 2, Theorem 3)."""

from hypothesis import given, settings

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.core.categories import (
    InMemoryPeripheryAdjacency,
    compute_core_plus_max_cliques,
    enumerate_x_candidates,
)
from repro.core.clique_tree import build_clique_tree
from repro.core.hstar import extract_hstar_graph

from tests.helpers import cliques_of, figure1_graph, names_of, small_graphs


def categorize(graph):
    star = extract_hstar_graph(graph)
    _, core_maximal = build_clique_tree(star)
    cats = compute_core_plus_max_cliques(
        star, core_maximal, InMemoryPeripheryAdjacency(graph)
    )
    return star, cats


class TestExample2:
    """The paper's Example 2 on the Figure 1 graph."""

    def test_m1(self):
        _, cats = categorize(figure1_graph())
        assert sorted(names_of(c) for c in cats.m1) == ["bcde"]

    def test_m2(self):
        _, cats = categorize(figure1_graph())
        assert sorted(names_of(c) for c in cats.m2) == ["abcwx"]

    def test_m3(self):
        _, cats = categorize(figure1_graph())
        assert sorted(names_of(c) for c in cats.m3) == ["acy", "cey", "drz", "esy"]

    def test_union_is_mh_plus(self):
        _, cats = categorize(figure1_graph())
        assert sorted(names_of(c) for c in cats.all_cliques()) == [
            "abcwx", "acy", "bcde", "cey", "drz", "esy"
        ]

    def test_x_candidates_have_nonempty_hnb(self):
        star = extract_hstar_graph(figure1_graph())
        for kernel, shared in enumerate_x_candidates(star):
            assert shared
            assert shared == star.common_periphery(kernel)

    def test_x_contains_papers_examples(self):
        # Example 2: X = {ac, ce, d, e}; e.g. `a` is subsumed by `ac`
        # because HNB(a) = HNB(ac) = {w, x, y}.
        star = extract_hstar_graph(figure1_graph())
        kernels = {names_of(kernel) for kernel, _ in enumerate_x_candidates(star)}
        assert kernels == {"ac", "ce", "d", "e"}


class TestTheorems:
    @settings(max_examples=60, deadline=None)
    @given(small_graphs())
    def test_theorem3_union_equals_core_touching_max_cliques(self, g):
        """M1 ∪ M2 ∪ M3 == {C in MCE(G_H+) : C ∩ H != ∅} (Theorems 2-3)."""
        star, cats = categorize(g)
        extended = g.induced_subgraph(star.extended)
        expected = {
            c for c in tomita_maximal_cliques(extended) if c & star.core
        }
        assert cliques_of(cats.all_cliques()) == expected

    @settings(max_examples=40, deadline=None)
    @given(small_graphs())
    def test_categories_are_disjoint(self, g):
        _, cats = categorize(g)
        m1, m2, m3 = cliques_of(cats.m1), cliques_of(cats.m2), cliques_of(cats.m3)
        assert not (m1 & m2) and not (m1 & m3) and not (m2 & m3)
        assert len(cats.m1) + len(cats.m2) + len(cats.m3) == cats.total

    @settings(max_examples=40, deadline=None)
    @given(small_graphs())
    def test_lemma3_results_are_globally_maximal(self, g):
        """Every H+-max-clique is maximal in all of G (Lemma 3)."""
        _, cats = categorize(g)
        for clique in cats.all_cliques():
            assert g.is_maximal_clique(clique)

    def test_medium_graph_equivalence(self, medium_random):
        star, cats = categorize(medium_random)
        extended = medium_random.induced_subgraph(star.extended)
        expected = {
            c for c in tomita_maximal_cliques(extended) if c & star.core
        }
        assert cliques_of(cats.all_cliques()) == expected

    def test_scale_free_graph_equivalence(self):
        from repro.generators import powerlaw_cluster_graph

        g = powerlaw_cluster_graph(250, 4, 0.7, seed=8)
        star, cats = categorize(g)
        extended = g.induced_subgraph(star.extended)
        expected = {c for c in tomita_maximal_cliques(extended) if c & star.core}
        assert cliques_of(cats.all_cliques()) == expected


class TestCategoryShapes:
    @settings(max_examples=30, deadline=None)
    @given(small_graphs())
    def test_m1_has_no_periphery_m2_m3_do(self, g):
        star, cats = categorize(g)
        for clique in cats.m1:
            assert not (clique & star.periphery)
        for clique in cats.m2 + cats.m3:
            assert clique & star.periphery

    @settings(max_examples=30, deadline=None)
    @given(small_graphs())
    def test_m2_core_parts_maximal_m3_core_parts_not(self, g):
        star, cats = categorize(g)
        core_graph = star.core_graph()
        for clique in cats.m2:
            assert core_graph.is_maximal_clique(clique & star.core)
        for clique in cats.m3:
            assert not core_graph.is_maximal_clique(clique & star.core)
