"""Tests for the Knuth tree-size estimator and the memory-shrink loop."""

import pytest

from repro.core.clique_tree import build_clique_tree
from repro.core.estimator import (
    count_backtrack_tree_nodes,
    estimate_tree_size,
    shrink_core_to_budget,
)
from repro.core.hstar import StarGraph, extract_hstar_graph
from repro.errors import EstimationError, MemoryBudgetExceeded
from repro.graph.adjacency import AdjacencyGraph

from tests.helpers import figure1_graph, seeded_gnp


def star_of(graph):
    return extract_hstar_graph(graph)


class TestEstimate:
    def test_deterministic_per_seed(self):
        star = star_of(figure1_graph())
        assert estimate_tree_size(star, seed=7) == estimate_tree_size(star, seed=7)

    def test_varies_with_seed(self):
        star = star_of(seeded_gnp(40, 0.3, seed=2))
        values = {estimate_tree_size(star, num_probes=8, seed=s) for s in range(6)}
        assert len(values) > 1

    def test_empty_core_estimates_root_only(self):
        star = StarGraph(core=frozenset(), neighbor_lists={})
        assert estimate_tree_size(star) == 1.0

    def test_single_clique_core_exact(self):
        # For a single k-clique the probe is deterministic: candidates at
        # each level are exactly the higher-ranked members, so the
        # estimate equals the number of sorted prefixes plus the root.
        k = 5
        g = AdjacencyGraph.from_edges(
            [(u, v) for u in range(k) for v in range(u + 1, k)]
        )
        star = star_of(g)
        # h-index of K5's degree sequence [4,4,4,4,4] is 4: one member of
        # the clique lands in the periphery.
        assert len(star.core) == k - 1
        estimate = estimate_tree_size(star, num_probes=16, seed=0)
        # Tree: root + k + (k-1) + ... + 1? The probe computes
        # 1 + f1 + f1*f2 + ... with f1 = k and fi thereafter the number of
        # higher-ranked common neighbors along one chain.
        assert estimate >= k + 1

    def test_positive_probe_count_required(self):
        star = star_of(figure1_graph())
        with pytest.raises(EstimationError):
            estimate_tree_size(star, num_probes=0)

    def test_estimate_upper_bounds_prefix_tree_loosely(self):
        # The estimator targets the backtracking tree, which contains the
        # prefix tree, so on average it should not undershoot wildly.
        star = star_of(seeded_gnp(50, 0.2, seed=3))
        tree, _ = build_clique_tree(star)
        estimate = estimate_tree_size(star, num_probes=400, seed=1)
        assert estimate >= 0.5 * tree.num_nodes


class TestBacktrackCount:
    def test_k2_by_hand(self):
        # Core {0, 1} joined by an edge: nodes are λ, <0>, <1>, <0,1> -> 4.
        star = StarGraph(
            core=frozenset({0, 1}),
            neighbor_lists={0: frozenset({1}), 1: frozenset({0})},
        )
        assert count_backtrack_tree_nodes(star) == 4

    def test_single_edge_graph(self):
        # h-index of a single edge is 1: core {0}, periphery {1}.
        # Nodes: λ, <0>, <0,1> -> 3.
        g = AdjacencyGraph.from_edges([(0, 1)])
        star = star_of(g)
        assert star.h == 1
        assert count_backtrack_tree_nodes(star) == 3

    def test_upper_bounds_prefix_tree(self):
        star = star_of(seeded_gnp(40, 0.25, seed=2))
        tree, _ = build_clique_tree(star)
        assert count_backtrack_tree_nodes(star) >= tree.num_nodes

    def test_counts_all_core_rooted_cliques(self):
        # The node set is λ plus every clique of G_H* whose ≺-minimal
        # member is a core vertex; verify by brute-force enumeration.
        star = star_of(figure1_graph())
        sg = star.star_graph()
        rank = {
            v: (0 if v in star.core else 1, v)
            for v in star.core | star.periphery
        }
        ordered = sorted(rank, key=rank.get)
        found = set()

        def grow(prefix, candidates):
            for i, v in enumerate(candidates):
                if not prefix and v not in star.core:
                    continue
                clique = prefix + [v]
                found.add(tuple(clique))
                grow(clique, [w for w in candidates[i + 1:] if sg.has_edge(v, w)])

        grow([], ordered)
        assert count_backtrack_tree_nodes(star) == len(found) + 1

    def test_max_nodes_guard(self):
        star = star_of(seeded_gnp(40, 0.4, seed=3))
        with pytest.raises(EstimationError):
            count_backtrack_tree_nodes(star, max_nodes=5)


class TestUnbiasedness:
    def test_estimator_converges_to_backtrack_count(self):
        for seed, (n, p) in enumerate([(25, 0.3), (40, 0.2)]):
            star = star_of(seeded_gnp(n, p, seed=seed))
            exact = count_backtrack_tree_nodes(star)
            estimate = estimate_tree_size(star, num_probes=8000, seed=0)
            assert abs(estimate - exact) / exact < 0.15

    def test_figure1_convergence(self):
        star = star_of(figure1_graph())
        exact = count_backtrack_tree_nodes(star)
        estimate = estimate_tree_size(star, num_probes=8000, seed=1)
        assert abs(estimate - exact) / exact < 0.15


class TestShrink:
    def test_no_shrink_when_budget_ample(self):
        star = star_of(figure1_graph())
        shrunk, estimate = shrink_core_to_budget(star, available_units=10**6)
        assert shrunk.core == star.core
        assert estimate > 0

    def test_shrinks_core_under_tight_budget(self):
        star = star_of(seeded_gnp(60, 0.3, seed=4))
        needed = star.memory_units
        shrunk, _ = shrink_core_to_budget(star, available_units=needed // 2)
        assert len(shrunk.core) < len(star.core)
        assert shrunk.core <= star.core

    def test_shrunk_star_fits_budget(self):
        star = star_of(seeded_gnp(60, 0.3, seed=4))
        budget = star.memory_units // 2
        shrunk, estimate = shrink_core_to_budget(star, available_units=budget)
        assert shrunk.memory_units + estimate <= budget

    def test_drops_lowest_degree_vertices_first(self):
        star = star_of(seeded_gnp(60, 0.3, seed=4))
        shrunk, _ = shrink_core_to_budget(star, available_units=star.memory_units // 2)
        dropped = star.core - shrunk.core
        if dropped and shrunk.core:
            max_dropped = max(len(star.neighbor_lists[v]) for v in dropped)
            min_kept = min(len(star.neighbor_lists[v]) for v in shrunk.core)
            assert max_dropped <= min_kept

    def test_impossible_budget_raises(self):
        star = star_of(figure1_graph())
        with pytest.raises(MemoryBudgetExceeded):
            shrink_core_to_budget(star, available_units=1)
