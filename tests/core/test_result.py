"""Tests for clique output sinks."""

import pytest

from repro.core.result import (
    CliqueCollector,
    CliqueCounter,
    CliqueFileSink,
    canonical_clique_order,
    render_clique_lines,
)


class TestCollector:
    def test_accumulates_unique_cliques(self):
        collector = CliqueCollector()
        collector.accept(frozenset({1, 2}))
        collector.accept(frozenset({1, 2}))
        collector.accept(frozenset({3}))
        assert len(collector) == 2


class TestCounter:
    def test_total_and_histogram(self):
        counter = CliqueCounter()
        counter.accept(frozenset({1, 2}))
        counter.accept(frozenset({3, 4, 5}))
        counter.accept(frozenset({6, 7}))
        assert counter.total == 3
        assert counter.size_histogram == {2: 2, 3: 1}
        assert counter.max_size == 3
        assert counter.average_size == (2 + 3 + 2) / 3

    def test_empty_average(self):
        assert CliqueCounter().average_size == 0.0

    def test_tracked_sets(self):
        counter = CliqueCounter(
            tracked_sets={"core": frozenset({1}), "periphery": frozenset({9})}
        )
        counter.accept(frozenset({1, 2}))
        counter.accept(frozenset({2, 3}))
        assert counter.tracked_counts == {"core": 1, "periphery": 0}


class TestFileSink:
    def test_writes_sorted_lines(self, tmp_path):
        path = tmp_path / "cliques.txt"
        with CliqueFileSink(path) as sink:
            sink.accept(frozenset({3, 1, 2}))
            sink.accept(frozenset({9}))
        assert path.read_text() == "1 2 3\n9\n"

    def test_count_tracked(self, tmp_path):
        with CliqueFileSink(tmp_path / "c.txt") as sink:
            sink.accept(frozenset({1}))
            sink.accept(frozenset({2}))
            assert sink.count == 2

    def test_close_idempotent(self, tmp_path):
        sink = CliqueFileSink(tmp_path / "c.txt")
        sink.close()
        sink.close()


class TestCrashSafety:
    def test_writes_go_to_scratch_until_commit(self, tmp_path):
        path = tmp_path / "c.txt"
        sink = CliqueFileSink(path)
        sink.accept(frozenset({1, 2}))
        assert not path.exists()
        assert (tmp_path / "c.txt.tmp").exists()
        sink.close()
        assert path.exists()
        assert not (tmp_path / "c.txt.tmp").exists()

    def test_torn_write_leaves_previous_output_untouched(self, tmp_path):
        """A producer that dies mid-stream must not clobber the last
        complete result with a torn, half-written file."""
        path = tmp_path / "c.txt"
        with CliqueFileSink(path) as sink:
            sink.accept(frozenset({1, 2, 3}))
        complete = path.read_bytes()

        crashed = CliqueFileSink(path)
        crashed.accept(frozenset({4}))
        # Simulated crash: the process vanishes without close(); at worst
        # a stale scratch file survives, never a torn target.
        assert path.read_bytes() == complete
        assert (tmp_path / "c.txt.tmp").exists()

        # The next sink for the same path overwrites the stale scratch
        # and commits its own complete output.
        with CliqueFileSink(path) as sink:
            sink.accept(frozenset({7, 8}))
        assert path.read_text() == "7 8\n"
        assert not (tmp_path / "c.txt.tmp").exists()

    def test_exception_aborts_instead_of_committing(self, tmp_path):
        path = tmp_path / "c.txt"
        with pytest.raises(RuntimeError):
            with CliqueFileSink(path) as sink:
                sink.accept(frozenset({1}))
                raise RuntimeError("producer died")
        assert not path.exists()
        assert not (tmp_path / "c.txt.tmp").exists()

    def test_abort_discards_scratch_only(self, tmp_path):
        path = tmp_path / "c.txt"
        with CliqueFileSink(path) as sink:
            sink.accept(frozenset({1, 2}))
        kept = path.read_bytes()
        replacement = CliqueFileSink(path)
        replacement.accept(frozenset({9}))
        replacement.abort()
        assert path.read_bytes() == kept
        assert not (tmp_path / "c.txt.tmp").exists()

    def test_abort_after_close_keeps_the_committed_file(self, tmp_path):
        path = tmp_path / "c.txt"
        sink = CliqueFileSink(path)
        sink.accept(frozenset({1}))
        sink.close()
        sink.abort()
        assert path.read_text() == "1\n"

    def test_canonical_sink_is_crash_safe_too(self, tmp_path):
        path = tmp_path / "c.txt"
        with pytest.raises(RuntimeError):
            with CliqueFileSink(path, canonical=True) as sink:
                sink.accept(frozenset({5}))
                raise RuntimeError("producer died")
        assert not path.exists()
        assert not (tmp_path / "c.txt.tmp").exists()


class TestCanonicalOrder:
    def test_lexicographic_over_sorted_tuples(self):
        cliques = [frozenset({9}), frozenset({3, 1}), frozenset({1, 2})]
        assert canonical_clique_order(cliques) == [(1, 2), (1, 3), (9,)]

    def test_render_matches_order(self):
        cliques = [frozenset({2, 1}), frozenset({0})]
        assert render_clique_lines(cliques) == "0\n1 2\n"

    def test_collector_canonical(self):
        collector = CliqueCollector()
        collector.accept(frozenset({5, 4}))
        collector.accept(frozenset({0}))
        assert collector.canonical() == [(0,), (4, 5)]

    def test_canonical_sink_reorders_on_close(self, tmp_path):
        path = tmp_path / "c.txt"
        with CliqueFileSink(path, canonical=True) as sink:
            sink.accept(frozenset({9}))
            sink.accept(frozenset({1, 2}))
        assert path.read_text() == "1 2\n9\n"

    def test_canonical_sink_insertion_order_independent(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        cliques = [frozenset({7}), frozenset({2, 3}), frozenset({1, 9})]
        for path, order in ((a, cliques), (b, list(reversed(cliques)))):
            with CliqueFileSink(path, canonical=True) as sink:
                for clique in order:
                    sink.accept(clique)
        assert a.read_bytes() == b.read_bytes()
