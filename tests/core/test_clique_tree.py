"""Tests for T_H* (Definition 8, Lemmas 1-2) and its construction."""

import pytest
from hypothesis import given, settings

from repro.core.clique_tree import (
    CliqueTree,
    build_clique_tree,
    build_clique_tree_from_cliques,
    enumerate_star_cliques,
)
from repro.core.hstar import extract_hstar_graph
from repro.errors import GraphError
from repro.storage.memory import MemoryModel

from tests.helpers import cliques_of, figure1_graph, names_of, small_graphs


@pytest.fixture
def star():
    return extract_hstar_graph(figure1_graph())


class TestEnumeration:
    def test_figure2_star_cliques(self, star):
        # The H*-max-cliques of Figure 1 (the root-to-leaf paths of the
        # paper's Figure 2 tree): one per periphery leaf plus bcde.
        names = sorted(names_of(c) for c in enumerate_star_cliques(star))
        assert names == ["abcw", "abcx", "acy", "bcde", "cey", "dr", "dz", "es"]

    def test_structured_matches_generic(self, star):
        structured = cliques_of(enumerate_star_cliques(star, use_structure=True))
        generic = cliques_of(enumerate_star_cliques(star, use_structure=False))
        assert structured == generic

    @settings(max_examples=50)
    @given(small_graphs())
    def test_structured_matches_generic_property(self, g):
        star = extract_hstar_graph(g)
        assert cliques_of(enumerate_star_cliques(star, True)) == cliques_of(
            enumerate_star_cliques(star, False)
        )

    @settings(max_examples=40)
    @given(small_graphs())
    def test_lemma1_invariants(self, g):
        """Every H*-max-clique has >=1 core vertex and <=1 periphery vertex."""
        star = extract_hstar_graph(g)
        for clique in enumerate_star_cliques(star):
            assert len(clique & star.core) >= 1
            assert len(clique & star.periphery) <= 1


class TestTreeStructure:
    def test_insert_and_contains(self, star):
        tree = CliqueTree.for_star(star)
        clique = frozenset(sorted(star.core)[:2])
        assert tree.insert(clique) is True
        assert tree.insert(clique) is False
        assert clique in tree

    def test_empty_clique_rejected(self, star):
        with pytest.raises(GraphError):
            CliqueTree.for_star(star).insert(frozenset())

    def test_remove_prunes_nodes(self, star):
        tree = CliqueTree.for_star(star)
        a, b = sorted(star.core)[:2]
        tree.insert({a, b})
        nodes_before = tree.num_nodes
        assert tree.remove({a, b}) is True
        assert tree.num_nodes == 1  # only the root remains
        assert nodes_before == 3

    def test_remove_missing_returns_false(self, star):
        tree = CliqueTree.for_star(star)
        assert tree.remove({1, 2}) is False

    def test_shared_prefix_shares_nodes(self, star):
        tree = CliqueTree.for_star(star)
        a, b, c = sorted(star.core)[:3]
        tree.insert({a, b})
        tree.insert({a, c})
        # root + a + b + c = 4 nodes, prefix `a` shared
        assert tree.num_nodes == 4

    def test_remove_keeps_shared_prefix(self, star):
        tree = CliqueTree.for_star(star)
        a, b, c = sorted(star.core)[:3]
        tree.insert({a, b})
        tree.insert({a, c})
        tree.remove({a, b})
        assert {a, c} in tree
        assert tree.num_nodes == 3

    def test_periphery_ranks_after_core(self, star):
        tree = CliqueTree.for_star(star)
        core_vertex = max(star.core)
        periphery_vertex = min(star.periphery)
        assert tree.rank_key(core_vertex) < tree.rank_key(periphery_vertex)

    def test_cliques_containing(self, star):
        tree, _ = build_clique_tree(star)
        a = min(star.core)
        for clique in tree.cliques_containing([a]):
            assert a in clique

    def test_release_returns_memory(self, star):
        memory = MemoryModel()
        tree, _ = build_clique_tree(star, memory=memory)
        assert memory.in_use_units == tree.num_nodes
        tree.release()
        assert memory.in_use_units == 0

    def test_memory_charged_per_node(self, star):
        memory = MemoryModel()
        tree, _ = build_clique_tree(star, memory=memory)
        assert memory.in_use_units == tree.num_nodes


class TestLemma2:
    def test_periphery_only_leaves(self, star):
        tree, _ = build_clique_tree(star)
        for core_part, leaf in tree.periphery_leaves():
            assert leaf in star.periphery
            assert core_part <= star.core

    def test_root_children_are_core(self, star):
        tree, _ = build_clique_tree(star)
        for clique in tree.cliques():
            first = tree.ordered(clique)[0]
            assert first in star.core


class TestBuild:
    def test_tree_holds_exactly_the_star_cliques(self, star):
        tree, _ = build_clique_tree(star)
        assert cliques_of(tree.cliques()) == cliques_of(enumerate_star_cliques(star))

    def test_core_maximal_marking(self, star):
        tree, core_maximal = build_clique_tree(star)
        assert {names_of(k) for k in core_maximal} == {"abc", "bcde"}
        for kernel in core_maximal:
            assert tree.is_core_maximal(kernel)

    def test_build_from_cliques_equivalent(self, star):
        built, mh1 = build_clique_tree(star)
        seeded, mh2 = build_clique_tree_from_cliques(star, list(built.cliques()))
        assert cliques_of(seeded.cliques()) == cliques_of(built.cliques())
        assert mh1 == mh2
        assert seeded.num_nodes == built.num_nodes

    def test_ablation_flag_produces_same_tree(self, star):
        fast, _ = build_clique_tree(star, use_structure=True)
        slow, _ = build_clique_tree(star, use_structure=False)
        assert cliques_of(fast.cliques()) == cliques_of(slow.cliques())
