"""Tests for the star-graph structure (Definitions 1-6, paper Example 1)."""

import pytest

from repro.core.hstar import StarGraph, extract_hstar_graph
from repro.errors import GraphError
from repro.storage.diskgraph import DiskGraph

from tests.helpers import FIGURE1_ID, figure1_graph, names_of


@pytest.fixture
def star():
    return extract_hstar_graph(figure1_graph())


class TestExample1:
    """The worked example of Section 3.1 on Figure 1."""

    def test_h_vertices(self, star):
        assert {names_of([v]) for v in star.core} == set("abcde")

    def test_h_neighbors(self, star):
        assert {names_of([v]) for v in star.periphery} == set("rswxyz")

    def test_q_and_t_outside_h_plus(self, star):
        assert FIGURE1_ID["q"] not in star.extended
        assert FIGURE1_ID["t"] not in star.extended

    def test_core_graph_is_gh(self, star):
        core_graph = star.core_graph()
        assert core_graph.num_vertices == 5
        assert core_graph.num_edges == 8

    def test_star_graph_has_no_periphery_edges(self, star):
        sg = star.star_graph()
        w, x = FIGURE1_ID["w"], FIGURE1_ID["x"]
        assert not sg.has_edge(w, x)  # (w,x) is in G but not in G_H*
        assert sg.num_edges == 20

    def test_size_edges(self, star):
        assert star.size_edges == 20
        assert star.core_edge_count == 8


class TestDerivedQueries:
    def test_common_periphery_of_abc(self, star):
        abc = {FIGURE1_ID[c] for c in "abc"}
        assert {names_of([v]) for v in star.common_periphery(abc)} == {"w", "x"}

    def test_common_periphery_of_ac(self, star):
        ac = {FIGURE1_ID[c] for c in "ac"}
        assert {names_of([v]) for v in star.common_periphery(ac)} == {"w", "x", "y"}

    def test_common_periphery_empty_input_gives_whole_periphery(self, star):
        assert star.common_periphery([]) == star.periphery

    def test_common_core_neighbors(self, star):
        ab = {FIGURE1_ID[c] for c in "ab"}
        assert {names_of([v]) for v in star.common_core_neighbors(ab)} == {"c"}

    def test_adjacent_in_star(self, star):
        a, w, x = FIGURE1_ID["a"], FIGURE1_ID["w"], FIGURE1_ID["x"]
        assert star.adjacent_in_star(a, w)
        assert star.adjacent_in_star(w, a)
        assert not star.adjacent_in_star(w, x)  # periphery-periphery

    def test_original_degree_defaults_to_list_length(self, star):
        a = FIGURE1_ID["a"]
        assert star.original_degree(a) == 5


class TestConstructionAndRestriction:
    def test_neighbor_lists_must_cover_core(self):
        with pytest.raises(GraphError):
            StarGraph(core=frozenset({1, 2}), neighbor_lists={1: frozenset({2})})

    def test_h_defaults_to_core_size(self):
        star = StarGraph(core=frozenset({1}), neighbor_lists={1: frozenset({2})})
        assert star.h == 1

    def test_restricted_to_moves_dropped_vertices_to_periphery(self, star):
        kept = sorted(star.core)[:3]
        smaller = star.restricted_to(kept)
        assert smaller.core == frozenset(kept)
        dropped = star.core - smaller.core
        # Dropped core vertices adjacent to kept ones become periphery.
        for v in dropped:
            if any(v in smaller.neighbor_lists[u] for u in kept):
                assert v in smaller.periphery

    def test_restricted_to_superset_rejected(self, star):
        with pytest.raises(GraphError):
            star.restricted_to(list(star.core) + [999])

    def test_memory_units(self, star):
        expected = sum(1 + len(star.neighbor_lists[v]) for v in star.core)
        assert star.memory_units == expected


class TestDiskExtraction:
    def test_matches_in_memory_extraction(self, tmp_path):
        g = figure1_graph()
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        from_disk = extract_hstar_graph(disk)
        from_memory = extract_hstar_graph(g)
        assert from_disk.core == from_memory.core
        assert from_disk.neighbor_lists == from_memory.neighbor_lists

    def test_extraction_uses_one_scan(self, tmp_path):
        g = figure1_graph()
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        before = disk.io_stats.sequential_scans
        extract_hstar_graph(disk)
        assert disk.io_stats.sequential_scans == before + 1
