"""Tests for ExtMCE checkpoint/restart."""

import json

import pytest

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.core.checkpoint import (
    CHECKPOINT_FILENAME,
    CheckpointState,
    clear_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.errors import CorruptDataError, GraphError, StorageError
from repro.storage.diskgraph import DiskGraph

from tests.helpers import cliques_of, seeded_gnp


def make_run(tmp_path, seed=3, n=80):
    g = seeded_gnp(n, 0.2, seed=5)
    work = tmp_path / "work"
    work.mkdir(exist_ok=True)
    disk = DiskGraph.create(tmp_path / "input.bin", g)
    algo = ExtMCE(disk, ExtMCEConfig(workdir=work, checkpoint=True, seed=seed))
    return g, work, algo


def interrupt_after_steps(algo, work, steps=2):
    """Consume the stream until `steps` checkpoints exist, then abandon it."""
    emitted = set()
    gen = algo.enumerate_cliques()
    for clique in gen:
        emitted.add(clique)
        if algo.report.num_recursions >= steps:
            break
    gen.close()
    assert (work / CHECKPOINT_FILENAME).exists()
    return emitted


class TestStateRoundTrip:
    def test_write_read(self, tmp_path):
        (tmp_path / "residual.bin").write_bytes(b"x")
        state = CheckpointState(
            completed_step=3,
            residual_path=str(tmp_path / "residual.bin"),
            target_size=42,
            cliques_emitted=17,
            estimated_recursions=4.5,
            seed=9,
            hashtable=[[1, 2], [3, 4, 5]],
        )
        write_checkpoint(tmp_path, state)
        back = read_checkpoint(tmp_path)
        assert back == state

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(StorageError):
            read_checkpoint(tmp_path)

    def test_corrupt_json_raises(self, tmp_path):
        (tmp_path / CHECKPOINT_FILENAME).write_text("{not json")
        with pytest.raises(StorageError):
            read_checkpoint(tmp_path)

    def test_wrong_version_raises(self, tmp_path):
        (tmp_path / CHECKPOINT_FILENAME).write_text(json.dumps({"version": 99}))
        with pytest.raises(StorageError):
            read_checkpoint(tmp_path)

    def test_missing_residual_raises(self, tmp_path):
        state = CheckpointState(1, str(tmp_path / "gone.bin"), 1, 0, 1.0, 0)
        write_checkpoint(tmp_path, state)
        with pytest.raises(StorageError):
            read_checkpoint(tmp_path)

    def test_clear_is_idempotent(self, tmp_path):
        clear_checkpoint(tmp_path)
        (tmp_path / "r.bin").write_bytes(b"x")
        write_checkpoint(
            tmp_path, CheckpointState(1, str(tmp_path / "r.bin"), 1, 0, 1.0, 0)
        )
        clear_checkpoint(tmp_path)
        clear_checkpoint(tmp_path)
        assert not (tmp_path / CHECKPOINT_FILENAME).exists()


class TestResume:
    def test_interrupt_and_resume_covers_oracle(self, tmp_path):
        g, work, algo = make_run(tmp_path)
        emitted = interrupt_after_steps(algo, work, steps=2)
        resumed = ExtMCE.resume(work)
        rest = set(resumed.enumerate_cliques())
        assert emitted | rest == cliques_of(tomita_maximal_cliques(g))

    def test_resume_clears_checkpoint_on_completion(self, tmp_path):
        _, work, algo = make_run(tmp_path)
        interrupt_after_steps(algo, work, steps=1)
        resumed = ExtMCE.resume(work)
        list(resumed.enumerate_cliques())
        assert not (work / CHECKPOINT_FILENAME).exists()

    def test_completed_run_leaves_no_checkpoint(self, tmp_path):
        _, work, algo = make_run(tmp_path)
        list(algo.enumerate_cliques())
        assert not (work / CHECKPOINT_FILENAME).exists()

    def test_resume_twice(self, tmp_path):
        g, work, algo = make_run(tmp_path)
        emitted = interrupt_after_steps(algo, work, steps=1)
        second = ExtMCE.resume(work)
        emitted |= interrupt_after_steps(second, work, steps=1)
        third = ExtMCE.resume(work)
        emitted |= set(third.enumerate_cliques())
        assert emitted == cliques_of(tomita_maximal_cliques(g))

    def test_checkpoint_records_emitted_count(self, tmp_path):
        _, work, algo = make_run(tmp_path)
        interrupt_after_steps(algo, work, steps=1)
        state = read_checkpoint(work)
        assert state.completed_step == 1
        assert state.cliques_emitted == algo.report.steps[0].cliques_emitted

    def test_checkpoint_without_workdir_rejected(self, tmp_path):
        g = seeded_gnp(10, 0.3, seed=1)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        with pytest.raises(GraphError):
            ExtMCE(disk, ExtMCEConfig(checkpoint=True))

    def test_resume_preserves_custom_config(self, tmp_path):
        g, work, algo = make_run(tmp_path)
        interrupt_after_steps(algo, work, steps=1)
        resumed = ExtMCE.resume(
            work, config=ExtMCEConfig(estimator_probes=8, hashtable_cleanup=False)
        )
        rest = set(resumed.enumerate_cliques())
        assert resumed._config.estimator_probes == 8
        assert resumed._config.workdir == work
        assert rest  # still produces the remaining cliques


class TestDurability:
    def make_state(self, tmp_path):
        (tmp_path / "r.bin").write_bytes(b"x")
        return CheckpointState(2, str(tmp_path / "r.bin"), 7, 11, 2.5, 4)

    def test_document_carries_crc(self, tmp_path):
        write_checkpoint(tmp_path, self.make_state(tmp_path))
        document = json.loads((tmp_path / CHECKPOINT_FILENAME).read_text())
        assert document["version"] == 2
        assert isinstance(document["crc32"], int)

    def test_tampered_field_detected(self, tmp_path):
        write_checkpoint(tmp_path, self.make_state(tmp_path))
        target = tmp_path / CHECKPOINT_FILENAME
        document = json.loads(target.read_text())
        document["cliques_emitted"] = 999  # silent rewind would lose cliques
        target.write_text(json.dumps(document))
        with pytest.raises(CorruptDataError):
            read_checkpoint(tmp_path)

    def test_legacy_v1_document_accepted(self, tmp_path):
        # Pre-CRC checkpoints (version 1, no crc32 field) must still resume.
        state = self.make_state(tmp_path)
        payload = dict(state.to_json())
        payload["version"] = 1
        (tmp_path / CHECKPOINT_FILENAME).write_text(json.dumps(payload))
        assert read_checkpoint(tmp_path) == state

    def test_write_leaves_no_scratch_file(self, tmp_path):
        write_checkpoint(tmp_path, self.make_state(tmp_path))
        assert not (tmp_path / (CHECKPOINT_FILENAME + ".tmp")).exists()

    def test_clear_removes_stale_scratch(self, tmp_path):
        (tmp_path / (CHECKPOINT_FILENAME + ".tmp")).write_text("{}")
        clear_checkpoint(tmp_path)
        assert not (tmp_path / (CHECKPOINT_FILENAME + ".tmp")).exists()
