"""Tests for paper-style quantity formatting and table rendering."""

from repro.analysis.tables import format_quantity, render_table


class TestFormatQuantity:
    def test_paper_examples(self):
        assert format_quantity(20_000) == "20K"
        assert format_quantity(6_500_000) == "6.5M"
        assert format_quantity(173_000_000) == "173M"
        assert format_quantity(1_000_000) == "1M"

    def test_small_integers_unchanged(self):
        assert format_quantity(77) == "77"
        assert format_quantity(0) == "0"

    def test_small_floats_two_decimals(self):
        assert format_quantity(3.14159) == "3.14"

    def test_thousands_with_decimals(self):
        assert format_quantity(4_400) == "4.4K"
        assert format_quantity(1_100) == "1.1K"

    def test_integral_float(self):
        assert format_quantity(5.0) == "5"


class TestRenderTable:
    def test_title_and_alignment(self):
        text = render_table("My Table", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert set(lines[1]) == {"="}
        assert "a" in lines[2] and "bb" in lines[2]
        assert lines[4].startswith("1")

    def test_handles_numeric_cells(self):
        text = render_table("T", ["x"], [[42]])
        assert "42" in text

    def test_empty_rows(self):
        text = render_table("T", ["x", "y"], [])
        assert "x" in text and "y" in text
