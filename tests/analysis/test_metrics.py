"""Tests for the Table 4/5 metric helpers."""

from repro.analysis.metrics import clique_statistics, hstar_sizes
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.core.hstar import extract_hstar_graph

from tests.helpers import figure1_graph


class TestHStarSizes:
    def test_figure1_sizes(self):
        g = figure1_graph()
        star = extract_hstar_graph(g)
        sizes = hstar_sizes(g, star)
        assert sizes.h == 5
        assert sizes.num_periphery == 6
        assert sizes.core_graph_edges == 8
        assert sizes.star_graph_edges == 20
        # G_H+ = all edges except the two incident to q and t: 25 - 2 = 23.
        assert sizes.extended_graph_edges == 23
        assert sizes.total_edges == 25

    def test_fractions(self):
        g = figure1_graph()
        sizes = hstar_sizes(g, extract_hstar_graph(g))
        assert sizes.core_fraction == 8 / 25
        assert sizes.star_fraction == 20 / 25
        assert sizes.extended_fraction == 23 / 25

    def test_ordering_gh_below_ghstar_below_ghplus(self):
        from repro.generators import powerlaw_cluster_graph

        g = powerlaw_cluster_graph(300, 4, 0.6, seed=1)
        sizes = hstar_sizes(g, extract_hstar_graph(g))
        assert sizes.core_graph_edges <= sizes.star_graph_edges
        assert sizes.star_graph_edges <= sizes.extended_graph_edges
        assert sizes.extended_graph_edges <= sizes.total_edges


class TestCliqueStatistics:
    def test_figure1_breakdown(self):
        g = figure1_graph()
        star = extract_hstar_graph(g)
        stats = clique_statistics(
            tomita_maximal_cliques(g), star.core, star.periphery
        )
        assert stats.total == 8
        assert stats.containing_core == 6  # all but {q,r} and {s,t}
        assert stats.containing_periphery == 7  # all but bcde
        assert stats.max_size == 5

    def test_empty(self):
        stats = clique_statistics([], frozenset(), frozenset())
        assert stats.total == 0
        assert stats.average_size == 0.0

    def test_average_size(self):
        stats = clique_statistics(
            [frozenset({1, 2}), frozenset({3, 4, 5, 6})], frozenset(), frozenset()
        )
        assert stats.average_size == 3.0
