"""networkx bridge tests, including third-party oracle cross-checks."""

import networkx
import pytest
from hypothesis import given, settings

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.interop.nx import from_networkx, to_networkx

from tests.helpers import cliques_of, small_graphs


class TestConversion:
    def test_round_trip(self):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2)], vertices=[5])
        back = from_networkx(to_networkx(g))
        assert back.num_vertices == g.num_vertices
        assert back.num_edges == g.num_edges
        assert 5 in back

    def test_directed_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(networkx.DiGraph([(0, 1)]))

    def test_multigraph_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(networkx.MultiGraph([(0, 1)]))

    def test_from_networkx_generator_graphs(self):
        nx_graph = networkx.karate_club_graph()
        g = from_networkx(nx_graph)
        assert g.num_vertices == nx_graph.number_of_nodes()
        assert g.num_edges == nx_graph.number_of_edges()


class TestThirdPartyOracle:
    """networkx.find_cliques as an independent MCE implementation."""

    def oracle(self, g):
        nx_graph = to_networkx(g)
        return {frozenset(c) for c in networkx.find_cliques(nx_graph)}

    def test_figure1_against_networkx(self, figure1):
        assert cliques_of(tomita_maximal_cliques(figure1)) == self.oracle(figure1)

    def test_karate_club(self):
        g = from_networkx(networkx.karate_club_graph())
        assert cliques_of(tomita_maximal_cliques(g)) == self.oracle(g)

    def test_extmce_against_networkx(self, tmp_path):
        from repro.core.extmce import ExtMCE, ExtMCEConfig
        from repro.storage.diskgraph import DiskGraph

        g = from_networkx(networkx.karate_club_graph())
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w"))
        assert set(algo.enumerate_cliques()) == self.oracle(g)

    @settings(max_examples=40, deadline=None)
    @given(small_graphs())
    def test_property_against_networkx(self, g):
        mine = cliques_of(tomita_maximal_cliques(g))
        # networkx.find_cliques omits nothing but reports singleton
        # cliques for isolated vertices too (as we do).
        assert mine == self.oracle(g)

    def test_scale_free_against_networkx(self):
        from repro.generators import powerlaw_cluster_graph

        g = powerlaw_cluster_graph(400, 4, 0.7, seed=21)
        assert cliques_of(tomita_maximal_cliques(g)) == self.oracle(g)
