"""Tests for DIMACS and METIS format adapters."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import StorageFormatError
from repro.graph.adjacency import AdjacencyGraph
from repro.interop.formats import read_dimacs, read_metis, write_dimacs, write_metis

from tests.helpers import small_graphs


class TestDimacs:
    def test_round_trip(self, tmp_path):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)], vertices=[3])
        path = tmp_path / "g.dimacs"
        write_dimacs(path, g)
        back = read_dimacs(path)
        assert back.num_vertices == 4
        assert back.num_edges == 3

    def test_reads_reference_file(self, tmp_path):
        path = tmp_path / "ref.dimacs"
        path.write_text("c a comment\np edge 3 2\ne 1 2\ne 2 3\n")
        g = read_dimacs(path)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert g.num_vertices == 3

    def test_edge_before_problem_line_rejected(self, tmp_path):
        path = tmp_path / "bad.dimacs"
        path.write_text("e 1 2\n")
        with pytest.raises(StorageFormatError):
            read_dimacs(path)

    def test_out_of_range_vertex_rejected(self, tmp_path):
        path = tmp_path / "bad.dimacs"
        path.write_text("p edge 2 1\ne 1 5\n")
        with pytest.raises(StorageFormatError):
            read_dimacs(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad.dimacs"
        path.write_text("p edge 2 1\nx 1 2\n")
        with pytest.raises(StorageFormatError):
            read_dimacs(path)

    def test_missing_problem_line_rejected(self, tmp_path):
        path = tmp_path / "bad.dimacs"
        path.write_text("c only comments\n")
        with pytest.raises(StorageFormatError):
            read_dimacs(path)

    @settings(max_examples=25, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(small_graphs())
    def test_round_trip_property(self, tmp_path, g):
        path = tmp_path / "prop.dimacs"
        write_dimacs(path, g)
        back = read_dimacs(path)
        assert back.num_vertices == g.num_vertices
        assert back.num_edges == g.num_edges
        assert sorted(back.degree_sequence()) == sorted(g.degree_sequence())


class TestMetis:
    def test_round_trip(self, tmp_path):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        path = tmp_path / "g.metis"
        write_metis(path, g)
        back = read_metis(path)
        assert back.num_edges == 4
        assert back.has_edge(0, 3)

    def test_reads_reference_file(self, tmp_path):
        path = tmp_path / "ref.metis"
        path.write_text("% comment\n3 2\n2\n1 3\n2\n")
        g = read_metis(path)
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_isolated_vertices_survive(self, tmp_path):
        g = AdjacencyGraph.from_edges([(0, 1)], vertices=[2])
        path = tmp_path / "g.metis"
        write_metis(path, g)
        assert read_metis(path).num_vertices == 3

    def test_weighted_format_rejected(self, tmp_path):
        path = tmp_path / "w.metis"
        path.write_text("2 1 011\n2 5\n1 5\n")
        with pytest.raises(StorageFormatError):
            read_metis(path)

    def test_wrong_line_count_rejected(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("3 1\n2\n1\n")
        with pytest.raises(StorageFormatError):
            read_metis(path)

    def test_edge_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(StorageFormatError):
            read_metis(path)

    def test_self_loop_rejected(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("1 1\n1\n")
        with pytest.raises(StorageFormatError):
            read_metis(path)

    @settings(max_examples=25, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(small_graphs())
    def test_round_trip_property(self, tmp_path, g):
        path = tmp_path / "prop.metis"
        write_metis(path, g)
        back = read_metis(path)
        assert back.num_vertices == g.num_vertices
        assert back.num_edges == g.num_edges
