"""Tests for the repro-mce command-line interface."""

import pytest

from repro.cli import main
from repro.storage.diskgraph import DiskGraph
from repro.storage.edgelist import write_edge_list, write_timestamped_edge_list

from tests.helpers import seeded_gnp


@pytest.fixture
def small_disk(tmp_path):
    g = seeded_gnp(20, 0.3, seed=4)
    return DiskGraph.create(tmp_path / "g.bin", g)


class TestConvert:
    def test_converts_edge_list(self, tmp_path, capsys):
        text = tmp_path / "edges.txt"
        write_edge_list(text, [(0, 1), (1, 2), (0, 2)])
        out = tmp_path / "g.bin"
        assert main(["convert", str(text), str(out)]) == 0
        assert "3 vertices, 3 edges" in capsys.readouterr().out
        assert DiskGraph.open(out).num_edges == 3

    def test_self_loop_reports_error(self, tmp_path, capsys):
        text = tmp_path / "edges.txt"
        text.write_text("1 1\n")
        assert main(["convert", str(text), str(tmp_path / "g.bin")]) == 1
        assert "error:" in capsys.readouterr().err


class TestStats:
    def test_reports_hstar_summary(self, small_disk, capsys):
        assert main(["stats", str(small_disk.path)]) == 0
        out = capsys.readouterr().out
        assert "h-index" in out
        assert "|G_H*|" in out

    def test_accepts_text_edge_list(self, tmp_path, capsys):
        text = tmp_path / "edges.txt"
        write_edge_list(text, [(0, 1), (1, 2), (0, 2)])
        assert main(["stats", str(text)]) == 0
        assert "vertices (n)" in capsys.readouterr().out


class TestEnumerate:
    def test_counts_match_oracle(self, small_disk, tmp_path, capsys):
        from repro.baselines.bron_kerbosch import tomita_maximal_cliques

        out = tmp_path / "cliques.txt"
        assert main(["enumerate", str(small_disk.path), "-o", str(out)]) == 0
        stdout = capsys.readouterr().out
        oracle = set(tomita_maximal_cliques(small_disk.to_adjacency_graph()))
        assert f"maximal cliques : {len(oracle)}" in stdout
        written = {
            frozenset(int(x) for x in line.split())
            for line in out.read_text().splitlines()
        }
        assert written == oracle

    def test_min_size_filter(self, small_disk, capsys):
        assert main(["enumerate", str(small_disk.path), "--min-size", "3"]) == 0
        assert "size >= 3" in capsys.readouterr().out

    def test_budget_flag(self, small_disk, capsys):
        assert main(["enumerate", str(small_disk.path), "--budget", "5000"]) == 0
        assert "peak memory" in capsys.readouterr().out

    def test_workers_flag_matches_serial_output(self, small_disk, tmp_path, capsys):
        serial = tmp_path / "serial.txt"
        parallel = tmp_path / "parallel.txt"
        base = ["enumerate", str(small_disk.path), "--canonical"]
        assert main(base + ["-o", str(serial)]) == 0
        assert main(base + ["-o", str(parallel), "--workers", "2"]) == 0
        assert "workers         : 2" in capsys.readouterr().out
        assert parallel.read_bytes() == serial.read_bytes()


class TestGenerate:
    def test_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "protein.txt"
        assert main(["generate", "protein", str(out)]) == 0
        assert "protein stand-in" in capsys.readouterr().out
        assert out.stat().st_size > 0

    def test_unknown_dataset_rejected_by_parser(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "nope", str(tmp_path / "x.txt")])


class TestMaintain:
    def test_replays_stream(self, small_disk, tmp_path, capsys):
        stream = tmp_path / "stream.txt"
        write_timestamped_edge_list(stream, [(0, 0, 19), (1, 1, 18), (2, 2, 17)])
        assert main(["maintain", str(small_disk.path), str(stream)]) == 0
        out = capsys.readouterr().out
        assert "applied" in out
        assert "core cliques maintained" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_experiments_rejects_unknown_name(self, capsys):
        assert main(["experiments", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestTraceFlag:
    def test_trace_written_and_summarised(self, small_disk, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["enumerate", str(small_disk.path), "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert trace.exists()

    def test_checkpoint_dir_flag(self, small_disk, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(
            ["enumerate", str(small_disk.path), "--checkpoint-dir", str(ckpt)]
        ) == 0
        # completed run clears its checkpoint
        assert not (ckpt / "checkpoint.json").exists()

    def test_resume_requires_checkpoint_dir(self, small_disk, capsys):
        assert main(["enumerate", str(small_disk.path), "--resume"]) == 2
        assert "requires --checkpoint-dir" in capsys.readouterr().err


class TestMetricsFlag:
    def test_metrics_out_writes_json_and_prom(self, small_disk, tmp_path, capsys):
        from repro import metrics

        out = tmp_path / "metrics.json"
        try:
            assert main(
                ["enumerate", str(small_disk.path), "--metrics-out", str(out)]
            ) == 0
        finally:
            metrics.disable()
        stdout = capsys.readouterr().out
        assert "metrics written" in stdout
        snapshot = metrics.load_snapshot(out)
        emitted = metrics.counter_value(snapshot, "repro_mce_cliques_emitted_total")
        assert emitted > 0
        assert f"maximal cliques : {int(emitted)}" in stdout
        prom = out.with_name(out.name + ".prom").read_text()
        assert "# TYPE repro_mce_cliques_emitted_total counter" in prom

    def test_stats_renders_metrics_snapshot(self, small_disk, tmp_path, capsys):
        from repro import metrics

        out = tmp_path / "metrics.json"
        try:
            assert main(
                ["enumerate", str(small_disk.path), "--metrics-out", str(out)]
            ) == 0
        finally:
            metrics.disable()
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        table = capsys.readouterr().out
        assert "Metrics snapshot" in table
        assert "repro_mce_steps_total" in table

    def test_stats_non_snapshot_json_falls_through(self, tmp_path, capsys):
        bogus = tmp_path / "not_metrics.json"
        bogus.write_text('{"schema": "something/else"}')
        # Not a snapshot and not a graph either: the graph path reports
        # a normal CLI error, proving the sniffing fell through.
        assert main(["stats", str(bogus)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_metrics_flag_leaves_registry_disabled(self, small_disk):
        from repro import metrics

        assert main(["enumerate", str(small_disk.path)]) == 0
        assert not metrics.enabled()


class TestVerify:
    def test_good_output_passes(self, small_disk, tmp_path, capsys):
        out = tmp_path / "cliques.txt"
        main(["enumerate", str(small_disk.path), "-o", str(out)])
        capsys.readouterr()
        assert main(["verify", str(small_disk.path), str(out)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_tampered_output_fails(self, small_disk, tmp_path, capsys):
        out = tmp_path / "cliques.txt"
        main(["enumerate", str(small_disk.path), "-o", str(out)])
        lines = out.read_text().splitlines()
        out.write_text("\n".join(lines[1:]) + "\n")  # drop one clique
        capsys.readouterr()
        assert main(["verify", str(small_disk.path), str(out)]) == 1
        assert "missing" in capsys.readouterr().out

    def test_soundness_only_ignores_missing(self, small_disk, tmp_path, capsys):
        out = tmp_path / "cliques.txt"
        main(["enumerate", str(small_disk.path), "-o", str(out)])
        lines = out.read_text().splitlines()
        out.write_text("\n".join(lines[1:]) + "\n")
        capsys.readouterr()
        assert main(
            ["verify", str(small_disk.path), str(out), "--soundness-only"]
        ) == 0


class TestIndexOut:
    def test_index_out_builds_queryable_index(self, small_disk, tmp_path, capsys):
        from repro.baselines.bron_kerbosch import tomita_maximal_cliques
        from repro.index import CliqueIndex

        directory = tmp_path / "idx"
        assert main(
            ["enumerate", str(small_disk.path), "--index-out", str(directory)]
        ) == 0
        assert "index written" in capsys.readouterr().out
        oracle = sorted(
            tuple(sorted(c))
            for c in set(tomita_maximal_cliques(small_disk.to_adjacency_graph()))
        )
        with CliqueIndex(directory) as index:
            assert index.num_cliques == len(oracle)
            assert list(index.scan_cliques()) == list(enumerate(oracle))

    def test_index_out_worker_count_does_not_change_bytes(
        self, small_disk, tmp_path, capsys
    ):
        names = ("cliques.dat", "cliques.idx", "postings.dat", "postings.dir")
        serial, parallel = tmp_path / "serial", tmp_path / "parallel"
        base = ["enumerate", str(small_disk.path)]
        assert main(base + ["--index-out", str(serial)]) == 0
        assert main(base + ["--index-out", str(parallel), "--workers", "2"]) == 0
        capsys.readouterr()
        for name in names:
            assert (serial / name).read_bytes() == (parallel / name).read_bytes()

    def test_stats_summarises_an_index_snapshot(self, small_disk, tmp_path, capsys):
        from repro import metrics

        snapshot_path = tmp_path / "metrics.json"
        try:
            assert main(
                [
                    "enumerate", str(small_disk.path),
                    "--index-out", str(tmp_path / "idx"),
                    "--metrics-out", str(snapshot_path),
                ]
            ) == 0
        finally:
            metrics.disable()
        capsys.readouterr()
        assert main(["stats", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "Clique query service" in out
        assert "indexed cliques (builds)" in out
        assert "Metrics snapshot" in out  # the flat table still follows


class TestServe:
    def test_missing_index_reports_cli_error(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "absent")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_parser_accepts_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "idx", "--port", "7777", "--cache-entries", "9",
             "--timeout", "2.5"]
        )
        assert args.command == "serve"
        assert args.port == 7777
        assert args.cache_entries == 9
        assert args.timeout == 2.5


class TestLiveCommand:
    @pytest.fixture
    def triangle_file(self, tmp_path):
        path = tmp_path / "triangle.txt"
        write_edge_list(path, [(0, 1), (1, 2), (0, 2)])
        return path

    def test_bootstrap_ingest_compact(self, triangle_file, tmp_path, capsys):
        from repro.live import LiveCliqueStore

        store_dir = tmp_path / "live"
        stream = tmp_path / "stream.txt"
        write_timestamped_edge_list(stream, [(0, 2, 3), (1, 3, 4)])
        assert main([
            "live", str(store_dir),
            "--graph", str(triangle_file), "--stream", str(stream),
        ]) == 0
        out = capsys.readouterr().out
        assert "created" in out
        assert "stream ingested : 2 edge updates (2 inserts, 0 deletes)" in out
        assert "compacted" in out
        assert "final state" in out
        with LiveCliqueStore.open(store_dir) as store:
            assert store.live_cliques() == {(0, 1, 2), (2, 3), (3, 4)}
            assert store.tail_length == 0  # folded by --compact-on-exit
            store.verify()

    def test_reopen_continues_from_prior_run(self, triangle_file, tmp_path,
                                             capsys):
        from repro.live import LiveCliqueStore

        store_dir = tmp_path / "live"
        first = tmp_path / "first.txt"
        write_timestamped_edge_list(first, [(0, 2, 3), (1, 3, 4)])
        assert main([
            "live", str(store_dir),
            "--graph", str(triangle_file), "--stream", str(first),
        ]) == 0
        # Second run reopens the store; --graph reseeds the maintainer
        # with the current graph so delta computation stays correct.
        current = tmp_path / "current.txt"
        write_edge_list(
            current, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
        )
        second = tmp_path / "second.txt"
        write_timestamped_edge_list(second, [(0, 2, 4)])
        capsys.readouterr()
        assert main([
            "live", str(store_dir),
            "--graph", str(current), "--stream", str(second),
        ]) == 0
        assert "opened" in capsys.readouterr().out
        with LiveCliqueStore.open(store_dir) as store:
            assert store.live_cliques() == {(0, 1, 2), (2, 3, 4)}

    def test_mixed_stream_without_graph(self, tmp_path, capsys):
        from repro.live import LiveCliqueStore

        store_dir = tmp_path / "live"
        stream = tmp_path / "stream.txt"
        stream.write_text(
            "# comment lines and blanks are skipped\n"
            "\n"
            "0 0 1\n"
            "1 1 2\n"
            "2 insert 0 2\n"
            "3 delete 0 2\n"
        )
        assert main(["live", str(store_dir), "--stream", str(stream),
                     "--no-compact-on-exit"]) == 0
        out = capsys.readouterr().out
        assert "3 inserts, 1 deletes" in out
        assert "compacted" not in out
        with LiveCliqueStore.open(store_dir) as store:
            assert store.live_cliques() == {(0, 1), (1, 2)}
            assert store.tail_length > 0  # tail survives --no-compact-on-exit

    def test_malformed_stream_reports_error(self, tmp_path, capsys):
        stream = tmp_path / "stream.txt"
        stream.write_text("0 merge 1 2\n")
        assert main(["live", str(tmp_path / "live"),
                     "--stream", str(stream)]) == 1
        assert "error:" in capsys.readouterr().err


class TestVerifyIndexCommand:
    def test_clean_frozen_index_passes(self, tmp_path, capsys):
        from repro.index import build_index

        build_index([frozenset({0, 1, 2}), frozenset({2, 3})],
                    tmp_path / "idx")
        assert main(["verify-index", str(tmp_path / "idx")]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "records_verified" in out

    def test_corrupt_frozen_index_fails_nonzero(self, tmp_path, capsys):
        from repro.index import build_index

        build_index([frozenset({0, 1, 2}), frozenset({2, 3})],
                    tmp_path / "idx")
        victim = tmp_path / "idx" / "cliques.dat"
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        victim.write_bytes(bytes(blob))
        assert main(["verify-index", str(tmp_path / "idx")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_clean_live_store_passes(self, tmp_path, capsys):
        from repro.live import LiveCliqueStore
        from repro.live.deltas import ADD, CliqueDelta

        with LiveCliqueStore.initialize(
            tmp_path / "live", [(0, 1, 2)]
        ) as store:
            store.apply_deltas([CliqueDelta(ADD, (3, 4))])
        assert main(["verify-index", str(tmp_path / "live")]) == 0
        out = capsys.readouterr().out
        assert "live store" in out
        assert "OK" in out

    def test_corrupt_live_store_fails_nonzero(self, tmp_path, capsys):
        from repro.live import LiveCliqueStore

        with LiveCliqueStore.initialize(tmp_path / "live", [(0, 1, 2)]):
            pass
        victim = tmp_path / "live" / "gen-000000" / "cliques.dat"
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        victim.write_bytes(bytes(blob))
        assert main(["verify-index", str(tmp_path / "live")]) == 1
        assert "error:" in capsys.readouterr().err
