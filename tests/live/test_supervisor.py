"""Ingest supervision: worker death, restart through WAL replay, and the
zero-lost-acked-updates guarantee.

The restart contract under test: when the drain thread dies mid-event,
the supervisor resyncs the store from disk (WAL is authoritative),
rebuilds a fresh ingestor over the surviving maintainer graph, and
idempotently re-applies everything the corpse left behind — so after any
single crash the clique set equals the one an uninterrupted run
produces, and no acked event is lost or double-applied.  A worker that
keeps dying exhausts its restart budget, latches ``gave_up``, and the
supervisor reports itself degraded instead of crash-looping forever.
"""

import threading
import time

import pytest

from repro import metrics
from repro.dynamic.maintainer import HStarMaintainer
from repro.errors import StorageError
from repro.live.deltas import CliqueDelta
from repro.live.ingest import LiveIngestor, maintainer_from_store
from repro.live.store import LiveCliqueStore
from repro.live.supervisor import LiveSupervisor, SupervisedIngestor


@pytest.fixture()
def fresh_registry():
    previous = metrics.get_registry()
    registry = metrics.MetricsRegistry()
    metrics.set_registry(registry)
    yield registry
    metrics.set_registry(previous)


#: A small mixed stream whose end state exercises adds and removes.
STREAM = [
    (0, 1, 2), (1, 2, 3), (2, 1, 3),      # triangle {1,2,3}
    (3, 3, 4), (4, 2, 4),                  # grow towards {2,3,4}
    (5, "delete", 1, 2),                   # break the first triangle
    (6, 4, 5), (7, 1, 4),
]


def _reference_cliques(tmp_path, events=STREAM):
    """The clique set an uninterrupted ingest of ``events`` produces."""
    store = LiveCliqueStore.initialize(tmp_path / "reference")
    try:
        LiveIngestor(HStarMaintainer(), store).ingest(events)
        return store.live_cliques()
    finally:
        store.close()


class TestSupervisedIngestor:
    def test_clean_run_acks_everything(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            worker = SupervisedIngestor(LiveIngestor(HStarMaintainer(), store))
            for event in STREAM:
                assert worker.submit(event, timeout=5.0)
            assert worker.wait_idle(30.0)
            assert worker.acked_events == len(STREAM)
            worker.stop()
            assert store.live_cliques() == _reference_cliques(tmp_path)
        finally:
            store.close()

    def test_crash_parks_the_inflight_event(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            boom = {"armed": True}

            def hook(event):
                if boom["armed"] and event[0] == 3:
                    boom["armed"] = False
                    raise RuntimeError("injected worker death")

            worker = SupervisedIngestor(
                LiveIngestor(HStarMaintainer(), store), fail_hook=hook
            )
            for event in STREAM:
                worker.submit(event, timeout=5.0)
            deadline = time.monotonic() + 10.0
            while worker.is_alive() and time.monotonic() < deadline:
                time.sleep(0.005)
            assert not worker.is_alive()
            assert isinstance(worker.last_error, RuntimeError)
            unacked = worker.take_unacked()
            # The event that killed the worker leads the handoff; nothing
            # submitted after it is lost.
            assert unacked[0][0] == 3
            assert worker.acked_events + len(unacked) == len(STREAM)
        finally:
            store.close()


class TestSupervisorRestart:
    def test_single_crash_restart_loses_nothing(self, tmp_path, fresh_registry):
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            boom = {"armed": True}

            def hook(event):
                if boom["armed"] and event[0] == 4:
                    boom["armed"] = False
                    raise RuntimeError("injected worker death")

            supervisor = LiveSupervisor(
                store,
                lambda: LiveIngestor(maintainer_from_store(store), store),
                poll_interval_seconds=0.02,
                backoff_base_seconds=0.01,
                fail_hook=hook,
            ).start()
            try:
                for event in STREAM:
                    assert supervisor.submit(event, timeout=30.0)
                assert supervisor.wait_idle(60.0)
                assert supervisor.restarts["ingest"] == 1
                assert supervisor.acked_events == len(STREAM)
                assert not supervisor.degraded
                assert store.live_cliques() == _reference_cliques(tmp_path)
                store.verify()
                snapshot = fresh_registry.snapshot()
                assert metrics.counter_value(
                    snapshot, "repro_supervisor_worker_deaths_total"
                ) == 1
            finally:
                supervisor.stop()
        finally:
            store.close()

    def test_crash_at_every_point_still_converges(self, tmp_path):
        """Kill the worker at each successive event of the stream; every
        crash position must recover to the same final clique set."""
        reference = _reference_cliques(tmp_path)
        for crash_at in range(len(STREAM)):
            root = tmp_path / f"crash{crash_at}"
            store = LiveCliqueStore.initialize(root / "live")
            try:
                boom = {"armed": True}

                def hook(event, _at=crash_at):
                    if boom["armed"] and event[0] == _at:
                        boom["armed"] = False
                        raise RuntimeError(f"die at {_at}")

                supervisor = LiveSupervisor(
                    store,
                    lambda store=store: LiveIngestor(
                        maintainer_from_store(store), store
                    ),
                    poll_interval_seconds=0.02,
                    backoff_base_seconds=0.01,
                    fail_hook=hook,
                ).start()
                try:
                    for event in STREAM:
                        assert supervisor.submit(event, timeout=30.0)
                    assert supervisor.wait_idle(60.0)
                    assert supervisor.acked_events == len(STREAM)
                    assert store.live_cliques() == reference, (
                        f"crash at event {crash_at} diverged"
                    )
                finally:
                    supervisor.stop()
            finally:
                store.close()

    def test_crash_loop_exhausts_budget_and_latches_degraded(
        self, tmp_path, fresh_registry
    ):
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            calls = {"n": 0}

            def factory():
                # The first call builds the initial worker; every restart
                # attempt after the crash fails — the persistent-failure
                # mode that must end in gave_up, not an infinite loop.
                calls["n"] += 1
                if calls["n"] == 1:
                    return LiveIngestor(maintainer_from_store(store), store)
                raise RuntimeError("restart always fails")

            def hook(event):
                raise RuntimeError("worker dies")

            supervisor = LiveSupervisor(
                store,
                factory,
                poll_interval_seconds=0.01,
                backoff_base_seconds=0.001,
                backoff_max_seconds=0.01,
                max_consecutive_failures=3,
                fail_hook=hook,
            ).start()
            try:
                supervisor.submit((0, 1, 2), timeout=5.0)
                deadline = time.monotonic() + 30.0
                while "ingest" not in supervisor.gave_up:
                    assert time.monotonic() < deadline, "never gave up"
                    time.sleep(0.01)
                assert supervisor.degraded
                assert supervisor.restarts["ingest"] == 0
                payload = supervisor.to_payload()
                assert payload["degraded"] is True
                assert "ingest" in payload["gave_up"]
                assert metrics.counter_value(
                    fresh_registry.snapshot(), "repro_supervisor_gave_up_total"
                ) == 1
                # Once abandoned there is no replacement to wait for:
                # submit and wait_idle fail fast instead of stalling the
                # producer for their full timeout.
                started = time.monotonic()
                assert supervisor.submit((1, 3, 4), timeout=30.0) is False
                assert supervisor.wait_idle(timeout=30.0) is False
                assert time.monotonic() - started < 2.0
            finally:
                supervisor.stop()
        finally:
            store.close()

    def test_poison_event_is_dropped_not_fatal(self, tmp_path, fresh_registry):
        """A self-loop event kills the worker, and the restart's re-apply
        raises the same GraphError deterministically.  The supervisor
        must drop the poison event (metered, never acked) and keep the
        pipeline alive for the rest of the stream — not crash-loop into
        gave_up over an event that can never succeed."""
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            supervisor = LiveSupervisor(
                store,
                lambda: LiveIngestor(maintainer_from_store(store), store),
                poll_interval_seconds=0.02,
                backoff_base_seconds=0.01,
            ).start()
            poison = (2, "insert", 7, 7)
            stream = [(0, 1, 2), (1, 2, 3), poison, (3, 3, 4), (4, 1, 3)]
            try:
                for event in stream:
                    assert supervisor.submit(event, timeout=30.0)
                assert supervisor.wait_idle(60.0)
                assert supervisor.dropped_events == 1
                assert supervisor.restarts["ingest"] >= 1
                assert supervisor.acked_events == len(stream) - 1
                assert not supervisor.degraded
                assert "ingest" not in supervisor.gave_up
                assert supervisor.to_payload()["dropped_events"] == 1
                assert metrics.counter_value(
                    fresh_registry.snapshot(),
                    "repro_supervisor_dropped_events_total",
                ) == 1
                store.verify()
                # Every non-poison event landed.
                vertices = {v for c in store.live_cliques() for v in c}
                assert {1, 2, 3, 4} <= vertices and 7 not in vertices
            finally:
                supervisor.stop()
        finally:
            store.close()

    @pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_dead_compactor_is_restarted(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            store.start_compactor(tail_threshold=4)
            supervisor = LiveSupervisor(
                store,
                poll_interval_seconds=0.02,
                backoff_base_seconds=0.01,
                compactor_tail_threshold=4,
            ).start()
            try:
                # Kill the compactor thread: SystemExit passes through
                # the worker's ``except Exception`` and ends it.
                original = store.compact

                def lethal(*a, **kw):
                    store.compact = original
                    raise SystemExit("injected compactor death")

                store.compact = lethal
                for n in range(6):
                    store.apply_deltas([CliqueDelta("add", (n, n + 100))])
                deadline = time.monotonic() + 30.0
                while supervisor.restarts["compactor"] < 1:
                    assert time.monotonic() < deadline, "compactor never restarted"
                    time.sleep(0.01)
                # The replacement compactor eventually folds the tail.
                deadline = time.monotonic() + 30.0
                while store.tail_length >= 4:
                    assert time.monotonic() < deadline, "replacement never compacted"
                    time.sleep(0.01)
                assert not supervisor.degraded
            finally:
                supervisor.stop()
        finally:
            store.close()

    def test_submit_blocks_through_a_restart_window(self, tmp_path):
        """Events submitted while the worker is a corpse are not dropped;
        they wait for the replacement."""
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            gate = threading.Event()

            def hook(event):
                if event[0] == 0 and not gate.is_set():
                    gate.set()
                    raise RuntimeError("die on first event")

            supervisor = LiveSupervisor(
                store,
                lambda: LiveIngestor(maintainer_from_store(store), store),
                poll_interval_seconds=0.02,
                backoff_base_seconds=0.2,  # a visible restart window
                fail_hook=hook,
            ).start()
            try:
                supervisor.submit((0, 1, 2), timeout=5.0)
                gate.wait(5.0)
                # The corpse may not be harvested yet; submit must ride
                # through the window regardless.
                assert supervisor.submit((1, 2, 3), timeout=30.0)
                assert supervisor.wait_idle(60.0)
                assert store.live_cliques() == {(1, 2), (2, 3)}
            finally:
                supervisor.stop()
        finally:
            store.close()


class TestResyncAndIdempotence:
    def test_resync_reloads_exactly_the_durable_state(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            LiveIngestor(HStarMaintainer(), store).ingest(STREAM)
            before = store.live_cliques()
            tail = store.resync()
            assert store.live_cliques() == before
            assert tail == store.tail_length
            store.verify()
        finally:
            store.close()

    def test_idempotent_apply_filters_already_live(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            delta = CliqueDelta("add", (1, 2, 3))
            assert len(store.apply_deltas([delta])) == 1
            # A strict re-apply is a stale-delta error...
            with pytest.raises(StorageError):
                store.apply_deltas([CliqueDelta("add", (1, 2, 3))])
            # ...an idempotent one is a filtered no-op.
            assert store.apply_deltas(
                [CliqueDelta("add", (1, 2, 3))], idempotent=True
            ) == []
            assert store.apply_deltas(
                [CliqueDelta("remove", (9, 10))], idempotent=True
            ) == []
            # Intra-batch: add-then-remove of a fresh clique both land.
            stamped = store.apply_deltas(
                [CliqueDelta("add", (4, 5)), CliqueDelta("remove", (4, 5))],
                idempotent=True,
            )
            assert [d.kind for d in stamped] == ["add", "remove"]
            assert store.live_cliques() == {(1, 2, 3)}
        finally:
            store.close()

    def test_reapply_converges_a_half_applied_insert(self, tmp_path):
        """The crash window: graph mutated, store deltas never logged."""
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            maintainer = HStarMaintainer()
            ingestor = LiveIngestor(maintainer, store)
            ingestor.ingest([(0, 1, 2), (1, 2, 3)])
            # Simulate the torn state: the edge lands in the adjacency
            # without the update hook ever firing.
            graph = maintainer.graph
            graph.add_edge(1, 3)
            assert store.live_cliques() == {(1, 2), (2, 3)}  # store lags
            ingestor.reapply_event((2, "insert", 1, 3))
            assert store.live_cliques() == {(1, 2, 3)}
            # Re-delivering the same event again changes nothing.
            ingestor.reapply_event((2, "insert", 1, 3))
            assert store.live_cliques() == {(1, 2, 3)}
        finally:
            store.close()

    def test_reapply_of_a_fully_applied_event_is_a_noop(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live")
        try:
            ingestor = LiveIngestor(HStarMaintainer(), store)
            ingestor.ingest([(0, 1, 2), (1, 2, 3), (2, 1, 3)])
            before = store.live_cliques()
            ingestor.reapply_event((2, 1, 3))
            ingestor.reapply_event((1, "insert", 2, 3))
            assert store.live_cliques() == before
        finally:
            store.close()
