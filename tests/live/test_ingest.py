"""LiveIngestor: maintainer hook → deltas → store, and bootstrapping."""

import pytest

from repro.dynamic.maintainer import HStarMaintainer
from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.live.ingest import LiveIngestor, bootstrap_live_store
from repro.live.store import LiveCliqueStore


@pytest.fixture()
def empty(tmp_path):
    store = LiveCliqueStore.initialize(tmp_path / "live")
    yield LiveIngestor(HStarMaintainer(), store)
    store.close()


class TestIngest:
    def test_insert_only_stream(self, empty):
        applied = empty.ingest([(0, 0, 1), (1, 1, 2), (2, 0, 2)])
        assert applied == 3
        assert empty.store.live_cliques() == {(0, 1, 2)}
        assert empty.report.insertions == 3
        assert empty.report.deletions == 0

    def test_mixed_stream_with_deletes(self, empty):
        empty.ingest([
            (0, 0, 1), (1, 1, 2), (2, 0, 2),
            (3, "delete", 0, 2),
        ])
        assert empty.store.live_cliques() == {(0, 1), (1, 2)}
        assert empty.report.deletions == 1

    def test_duplicate_insert_skipped(self, empty):
        applied = empty.ingest([(0, 0, 1), (1, 0, 1), (2, 1, 0)])
        # The maintainer only fires the hook for edges actually applied,
        # so the two duplicates are invisible to the report.
        assert applied == 1
        assert empty.report.insertions == 1
        assert empty.store.live_cliques() == {(0, 1)}

    def test_single_edge_calls(self, empty):
        empty.insert_edge(3, 4)
        assert empty.store.live_cliques() == {(3, 4)}
        empty.delete_edge(3, 4)
        assert empty.store.live_cliques() == {(3,), (4,)}

    def test_malformed_event_rejected(self, empty):
        with pytest.raises(GraphError):
            empty.ingest([(0, 1)])
        with pytest.raises(GraphError):
            empty.ingest([(0, "merge", 1, 2)])

    def test_report_payload(self, empty):
        empty.ingest([(0, 0, 1), (1, 1, 2)])
        payload = empty.report.to_payload()
        assert payload["edges_applied"] == 2
        assert payload["deltas_emitted"] >= 2
        assert payload["updates_per_second"] >= 0.0


class TestBootstrap:
    def test_bootstrap_seeds_generation_zero(self, tmp_path):
        graph = AdjacencyGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
        )
        store = bootstrap_live_store(
            tmp_path / "live", graph, tmp_path / "work"
        )
        try:
            assert store.generation == "gen-000000"
            assert store.live_cliques() == {(0, 1, 2), (2, 3), (3, 4)}
            # Ingestion continues from the bootstrapped base.
            ingestor = LiveIngestor(HStarMaintainer(graph), store)
            ingestor.ingest([(0, 2, 4)])
            # (2,4) completes the triangle {2,3,4}, subsuming (2,3), (3,4).
            assert store.live_cliques() == {(0, 1, 2), (2, 3, 4)}
        finally:
            store.close()
