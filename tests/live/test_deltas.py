"""Delta rules: one edge update's exact effect on the maximal-clique set."""

import random

import pytest

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.live.deltas import (
    ADD,
    REMOVE,
    CliqueDelta,
    delete_edge_deltas,
    insert_edge_deltas,
)


def clique_set(graph: AdjacencyGraph) -> set[tuple[int, ...]]:
    return {tuple(sorted(c)) for c in tomita_maximal_cliques(graph)}


def make_lookup(cliques: set[tuple[int, ...]]):
    def lookup(vertex: int):
        return [c for c in cliques if vertex in c]

    return lookup


def apply_deltas(cliques: set[tuple[int, ...]], deltas) -> set[tuple[int, ...]]:
    current = set(cliques)
    for delta in deltas:
        members = tuple(delta.vertices)
        if delta.kind == ADD:
            assert members not in current, f"duplicate add of {members}"
            current.add(members)
        else:
            assert members in current, f"removal of unknown {members}"
            current.remove(members)
    return current


class TestCliqueDelta:
    def test_rejects_unknown_kind(self):
        with pytest.raises(GraphError):
            CliqueDelta("mutate", (1, 2))

    def test_rejects_empty_clique(self):
        with pytest.raises(GraphError):
            CliqueDelta(ADD, ())

    def test_stamped_assigns_seq(self):
        delta = CliqueDelta(ADD, (1, 2))
        assert delta.seq == 0
        assert delta.stamped(7).seq == 7
        assert delta.stamped(7).vertices == (1, 2)


class TestInsert:
    def test_first_edge_between_singletons(self):
        graph = AdjacencyGraph.from_edges([(0, 1)])
        before = {(0,), (1,)}
        deltas = insert_edge_deltas(graph, 0, 1, make_lookup(before))
        assert apply_deltas(before, deltas) == {(0, 1)}

    def test_closing_a_triangle(self):
        graph = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        before = {(0, 1), (1, 2)}  # pre-insert cliques of the path 0-1-2
        deltas = insert_edge_deltas(graph, 0, 2, make_lookup(before))
        assert apply_deltas(before, deltas) == {(0, 1, 2)}

    def test_removals_precede_additions(self):
        graph = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        before = {(0, 1), (1, 2)}
        deltas = insert_edge_deltas(graph, 0, 2, make_lookup(before))
        kinds = [d.kind for d in deltas]
        assert kinds == sorted(kinds, key=(REMOVE, ADD).index)

    def test_bridge_edge_keeps_side_cliques(self):
        # Two triangles joined by the new edge (2, 3): nothing is subsumed.
        graph = AdjacencyGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
        )
        before = {(0, 1, 2), (3, 4, 5)}
        deltas = insert_edge_deltas(graph, 2, 3, make_lookup(before))
        assert apply_deltas(before, deltas) == {(0, 1, 2), (3, 4, 5), (2, 3)}


class TestDelete:
    def test_splitting_an_edge(self):
        # Post-delete graph: two isolated vertices.
        post = AdjacencyGraph.from_edges([], vertices=[0, 1])
        before = {(0, 1)}
        deltas = delete_edge_deltas(post, 0, 1, make_lookup(before))
        assert apply_deltas(before, deltas) == {(0,), (1,)}

    def test_breaking_a_triangle(self):
        post = AdjacencyGraph.from_edges([(0, 1), (1, 2)])
        before = {(0, 1, 2)}
        deltas = delete_edge_deltas(post, 0, 2, make_lookup(before))
        assert apply_deltas(before, deltas) == {(0, 1), (1, 2)}

    def test_halves_subsumed_by_surviving_clique_are_dropped(self):
        # K4 minus edge (0, 1): halves {0,2,3} and {1,2,3} both survive.
        post = AdjacencyGraph.from_edges(
            [(0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        )
        before = {(0, 1, 2, 3)}
        deltas = delete_edge_deltas(post, 0, 1, make_lookup(before))
        assert apply_deltas(before, deltas) == {(0, 2, 3), (1, 2, 3)}


class TestRandomizedSingleStep:
    """Each single edge toggle moves M(G) exactly to the new graph's cliques."""

    @pytest.mark.parametrize("seed", range(8))
    def test_insert_matches_oracle(self, seed):
        rng = random.Random(seed)
        n = 10
        edges = {
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < 0.4
        }
        missing = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if (u, v) not in edges
        ]
        if not missing:
            pytest.skip("dense draw left no edge to insert")
        u, v = rng.choice(missing)
        before_graph = AdjacencyGraph.from_edges(sorted(edges), vertices=range(n))
        before = clique_set(before_graph)
        after_graph = AdjacencyGraph.from_edges(
            sorted(edges | {(u, v)}), vertices=range(n)
        )
        deltas = insert_edge_deltas(after_graph, u, v, make_lookup(before))
        assert apply_deltas(before, deltas) == clique_set(after_graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_delete_matches_oracle(self, seed):
        rng = random.Random(100 + seed)
        n = 10
        edges = {
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < 0.4
        }
        if not edges:
            pytest.skip("sparse draw left no edge to delete")
        u, v = rng.choice(sorted(edges))
        before_graph = AdjacencyGraph.from_edges(sorted(edges), vertices=range(n))
        before = clique_set(before_graph)
        after_graph = AdjacencyGraph.from_edges(
            sorted(edges - {(u, v)}), vertices=range(n)
        )
        deltas = delete_edge_deltas(after_graph, u, v, make_lookup(before))
        assert apply_deltas(before, deltas) == clique_set(after_graph)
