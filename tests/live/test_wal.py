"""WAL: record codec, torn-tail recovery, corruption detection, append repair."""

import random

import pytest

from repro.errors import CorruptDataError, StorageError, StorageFormatError
from repro.faults import FaultPlan, FaultRule
from repro.live.deltas import ADD, REMOVE, CliqueDelta
from repro.live.wal import (
    WAL_MAGIC,
    DeltaLogWriter,
    ReplayReport,
    decode_delta_record,
    encode_delta_record,
    replay_delta_log,
)


def some_deltas(count=5, seed=0):
    rng = random.Random(seed)
    deltas = []
    for i in range(count):
        vertices = tuple(sorted(rng.sample(range(50), rng.randint(1, 6))))
        kind = ADD if rng.random() < 0.7 else REMOVE
        deltas.append(CliqueDelta(kind, vertices, seq=i + 1))
    return deltas


class TestRecordCodec:
    def test_round_trip(self):
        for delta in some_deltas(20, seed=3):
            blob = encode_delta_record(delta)
            decoded, consumed = decode_delta_record(blob)
            assert decoded == delta
            assert consumed == len(blob)

    def test_truncation_is_format_error(self):
        blob = encode_delta_record(CliqueDelta(ADD, (3, 4, 5), seq=9))
        for cut in range(1, len(blob)):
            with pytest.raises((StorageFormatError, CorruptDataError)):
                decode_delta_record(blob[:cut])

    def test_crc_flip_is_corruption(self):
        blob = bytearray(encode_delta_record(CliqueDelta(ADD, (3, 4, 5), seq=9)))
        blob[-1] ^= 0xFF
        with pytest.raises(CorruptDataError):
            decode_delta_record(bytes(blob))

    def test_unknown_kind_byte_is_corruption(self):
        delta = CliqueDelta(REMOVE, (1,), seq=1)
        blob = bytearray(encode_delta_record(delta))
        # seq=1 encodes as one varint byte; the kind byte follows it.
        blob[1] = 0x7E
        with pytest.raises(CorruptDataError):
            decode_delta_record(bytes(blob), verify=False)


class TestLogRoundTrip:
    def test_create_append_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = DeltaLogWriter.create(path)
        deltas = some_deltas(12, seed=1)
        written = writer.append(deltas)
        assert written > 0
        assert list(replay_delta_log(path)) == deltas

    def test_create_refuses_existing_content(self, tmp_path):
        path = tmp_path / "wal.log"
        DeltaLogWriter.create(path).append(some_deltas(1))
        with pytest.raises(StorageError):
            DeltaLogWriter.create(path)

    def test_replay_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!\x00\x01")
        with pytest.raises(StorageFormatError):
            list(replay_delta_log(path))

    def test_open_for_append_continues_log(self, tmp_path):
        path = tmp_path / "wal.log"
        first = some_deltas(4, seed=2)
        DeltaLogWriter.create(path).append(first)
        writer, replayed = DeltaLogWriter.open_for_append(path)
        assert replayed == first
        second = [CliqueDelta(ADD, (9, 10), seq=99)]
        writer.append(second)
        assert list(replay_delta_log(path)) == first + second


class TestTornTail:
    def test_torn_tail_raises_without_recover(self, tmp_path):
        path = tmp_path / "wal.log"
        DeltaLogWriter.create(path).append(some_deltas(3, seed=4))
        whole = path.read_bytes()
        path.write_bytes(whole[:-2])
        with pytest.raises(StorageFormatError):
            list(replay_delta_log(path))

    def test_recover_tail_drops_only_the_tear(self, tmp_path):
        path = tmp_path / "wal.log"
        deltas = some_deltas(3, seed=4)
        writer = DeltaLogWriter.create(path)
        writer.append(deltas)
        boundary = path.stat().st_size
        writer.append([CliqueDelta(ADD, (70, 71, 72), seq=50)])
        whole = path.read_bytes()
        for cut in range(boundary + 1, len(whole)):
            path.write_bytes(whole[:cut])
            report = ReplayReport()
            recovered = list(
                replay_delta_log(path, recover_tail=True, report=report)
            )
            assert recovered == deltas
            assert report.torn
            assert report.valid_bytes == boundary

    def test_open_for_append_truncates_tear(self, tmp_path):
        path = tmp_path / "wal.log"
        deltas = some_deltas(2, seed=5)
        DeltaLogWriter.create(path).append(deltas)
        boundary = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"\x17")  # lone varint byte: a torn record start
        writer, replayed = DeltaLogWriter.open_for_append(path)
        assert replayed == deltas
        assert path.stat().st_size == boundary
        writer.append([CliqueDelta(REMOVE, (1, 2), seq=77)])
        assert list(replay_delta_log(path)) == deltas + [
            CliqueDelta(REMOVE, (1, 2), seq=77)
        ]


class TestCorruptionFuzz:
    """Flipped bits anywhere in the body are never silently absorbed."""

    @pytest.mark.parametrize("seed", range(10))
    def test_single_byte_flip_detected_or_torn(self, tmp_path, seed):
        path = tmp_path / "wal.log"
        deltas = some_deltas(8, seed=seed)
        DeltaLogWriter.create(path).append(deltas)
        whole = bytearray(path.read_bytes())
        rng = random.Random(1000 + seed)
        position = rng.randrange(len(WAL_MAGIC), len(whole))
        whole[position] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(whole))
        # Outcomes: CRC mismatch (corruption) or a length-field flip that
        # makes a record run past EOF (format error).  Silent success is
        # only acceptable when replay still returns a strict prefix of the
        # original deltas (the flip landed in the final record and turned
        # it into a shorter-but-CRC-valid tail, which CRC32 makes
        # astronomically unlikely — still, assert the contract).
        try:
            replayed = list(replay_delta_log(path))
        except (CorruptDataError, StorageFormatError):
            return
        assert replayed == deltas[: len(replayed)]


class TestAppendFailureRepair:
    def test_injected_write_failure_repairs_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        # after=2: the create() magic write and the first append pass,
        # the second append fires.
        plan = FaultPlan(
            [FaultRule(operation="write", kind="io_error", after=2, path_contains="wal")],
            seed=3,
        )
        writer = DeltaLogWriter.create(path, fault_plan=plan)
        first = some_deltas(3, seed=6)
        writer.append(first)
        size_before = path.stat().st_size
        with pytest.raises(StorageError):
            writer.append(some_deltas(2, seed=7))
        assert path.stat().st_size == size_before
        assert list(replay_delta_log(path)) == first
        # The rule disarms after one firing; the writer keeps working.
        more = [CliqueDelta(ADD, (5, 6), seq=123)]
        writer.append(more)
        assert list(replay_delta_log(path)) == first + more

    def test_torn_write_fault_leaves_recoverable_log(self, tmp_path):
        path = tmp_path / "wal.log"
        plan = FaultPlan(
            [FaultRule(operation="write", kind="torn_write", after=2,
                       path_contains="wal")],
            seed=9,
        )
        writer = DeltaLogWriter.create(path, fault_plan=plan)
        first = some_deltas(2, seed=8)
        writer.append(first)
        try:
            writer.append(some_deltas(3, seed=9))
        except StorageError:
            pass
        # Whatever the torn write left behind, recovery must return a
        # prefix that starts with the acknowledged records.
        report = ReplayReport()
        recovered = list(replay_delta_log(path, recover_tail=True, report=report))
        assert recovered[: len(first)] == first
