"""The live-stack differential contract (ISSUE 6 acceptance criterion).

After ingesting *any* edge stream, queries served from the live stack —
the compacted base generation plus the in-memory delta tail — must
return exactly the answers of a cold full rebuild: enumerate the final
graph from scratch, ``build_index`` the result, query that.  The matrix
randomizes stream length, delete share, and where compaction (and a
close/reopen crash-recovery cycle) lands inside the stream.
"""

import random

import pytest

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.dynamic.maintainer import HStarMaintainer
from repro.graph.adjacency import AdjacencyGraph
from repro.index import CliqueIndex, build_index
from repro.live import LiveCliqueStore, LiveIngestor
from repro.service import CliqueQueryEngine


def random_stream(rng, vertices, length, delete_share):
    """A random insert/delete stream plus the resulting final edge set."""
    edges: set[tuple[int, int]] = set()
    events = []
    for ts in range(length):
        if edges and rng.random() < delete_share:
            u, v = rng.choice(sorted(edges))
            edges.discard((u, v))
            events.append((ts, "delete", u, v))
        else:
            u, v = rng.sample(range(vertices), 2)
            u, v = min(u, v), max(u, v)
            if (u, v) in edges:
                continue  # duplicate inserts are no-ops either way
            edges.add((u, v))
            events.append((ts, u, v))
    return events, edges


def final_cliques(edges, touched):
    graph = AdjacencyGraph.from_edges(sorted(edges), vertices=sorted(touched))
    return sorted(tuple(sorted(c)) for c in set(tomita_maximal_cliques(graph)))


def run_stream(tmp_path, events, compact_at=(), reopen_at=()):
    """Ingest ``events`` into a fresh live store, compacting/reopening
    at the given event indices; returns the final store (open)."""
    directory = tmp_path / "live"
    store = LiveCliqueStore.initialize(directory)
    maintainer = HStarMaintainer()
    ingestor = LiveIngestor(maintainer, store)
    for position, event in enumerate(events):
        ingestor.ingest([event])
        if position in compact_at:
            store.compact()
        if position in reopen_at:
            graph = maintainer.graph
            store.close()
            store = LiveCliqueStore.open(directory)
            maintainer = HStarMaintainer(graph)
            ingestor = LiveIngestor(maintainer, store)
    return store


MATRIX = [
    # (seed, vertices, length, delete_share)
    (1, 10, 40, 0.0),
    (2, 10, 60, 0.2),
    (3, 12, 80, 0.35),
    (4, 8, 50, 0.5),
    (5, 14, 90, 0.25),
    (6, 9, 70, 0.4),
]


@pytest.mark.parametrize("seed,vertices,length,delete_share", MATRIX)
def test_live_stack_matches_cold_rebuild(tmp_path, seed, vertices, length,
                                         delete_share):
    rng = random.Random(seed)
    events, edges = random_stream(rng, vertices, length, delete_share)
    touched = {u for _, *rest in [(e[0], *e[1:]) for e in events]
               for u in (rest[-2], rest[-1])}
    # Compaction and a crash-recovery (close/reopen) cycle land at
    # random points inside the stream, so the final answer is served
    # from a genuine generation + tail split.
    compact_at = {rng.randrange(len(events)) for _ in range(2)}
    reopen_at = {rng.randrange(len(events))}
    store = run_stream(tmp_path, events, compact_at, reopen_at)
    try:
        expected = final_cliques(edges, touched)

        # Contract 1: the live clique set is exactly the cold enumeration.
        assert sorted(store.live_cliques()) == expected

        # Contract 2: per-vertex query answers match a cold index rebuild.
        if expected:
            build_index(expected, tmp_path / "cold")
            with CliqueIndex(tmp_path / "cold") as cold:
                live_engine = CliqueQueryEngine(store)
                cold_engine = CliqueQueryEngine(cold)
                for vertex in sorted(touched):
                    live_ids = live_engine.cliques_containing(vertex).value
                    cold_ids = cold_engine.cliques_containing(vertex).value
                    live_answers = sorted(
                        store.clique(cid) for cid in live_ids
                    )
                    cold_answers = sorted(
                        cold.clique(cid) for cid in cold_ids
                    )
                    assert live_answers == cold_answers, f"vertex {vertex}"
                top_live = [tuple(c) for c in live_engine.top_k_largest(5).value]
                top_cold = [tuple(c) for c in cold_engine.top_k_largest(5).value]
                assert sorted(map(len, top_live)) == sorted(map(len, top_cold))

        # Contract 3: the store's own audit passes.
        store.verify()
    finally:
        store.close()


def test_final_compaction_preserves_answers(tmp_path):
    rng = random.Random(99)
    events, edges = random_stream(rng, 11, 70, 0.3)
    store = run_stream(tmp_path, events)
    try:
        touched = set()
        for event in events:
            touched.update(event[-2:])
        expected = final_cliques(edges, touched)
        assert sorted(store.live_cliques()) == expected
        store.compact()
        assert sorted(store.live_cliques()) == expected
        assert store.tail_length == 0
    finally:
        store.close()
