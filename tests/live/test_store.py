"""LiveCliqueStore: overlay reads, durability, compaction, recovery, faults."""

import json
import threading

import pytest

from repro.errors import GraphError, StorageError
from repro.faults import FaultPlan, FaultRule
from repro.live.deltas import ADD, REMOVE, CliqueDelta
from repro.live.store import LIVE_MANIFEST_FILENAME, LiveCliqueStore


def add(*vertices):
    return CliqueDelta(ADD, tuple(sorted(vertices)))


def remove(*vertices):
    return CliqueDelta(REMOVE, tuple(sorted(vertices)))


SEED_CLIQUES = [(0, 1, 2), (2, 3), (4, 5, 6), (6, 7)]


@pytest.fixture()
def seeded(tmp_path):
    store = LiveCliqueStore.initialize(tmp_path / "live", SEED_CLIQUES)
    yield store
    store.close()


class TestLifecycle:
    def test_initialize_empty(self, tmp_path):
        with LiveCliqueStore.initialize(tmp_path / "live") as store:
            assert store.num_cliques == 0
            assert store.generation is None
            assert store.live_cliques() == set()

    def test_initialize_seeded(self, seeded):
        assert seeded.generation == "gen-000000"
        assert seeded.live_cliques() == set(SEED_CLIQUES)
        assert seeded.num_cliques == len(SEED_CLIQUES)

    def test_initialize_refuses_existing(self, tmp_path, seeded):
        with pytest.raises(StorageError):
            LiveCliqueStore.initialize(seeded.directory)

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            LiveCliqueStore.open(tmp_path)

    def test_closed_store_rejects_writes(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live")
        store.close()
        with pytest.raises(StorageError):
            store.apply_deltas([add(1, 2)])


class TestOverlayReads:
    def test_added_clique_visible_everywhere(self, seeded):
        seeded.apply_deltas([add(7, 8, 9)])
        assert (7, 8, 9) in seeded.live_cliques()
        cid = seeded.postings(8)[0]
        assert seeded.clique(cid) == (7, 8, 9)
        assert seeded.clique_size(cid) == 3
        assert seeded.is_stale(8)
        assert not seeded.is_stale(0)

    def test_removed_base_clique_tombstoned(self, seeded):
        target = seeded.postings(3)  # (2, 3) lives in the base
        assert len(target) == 1
        seeded.apply_deltas([remove(2, 3)])
        assert (2, 3) not in seeded.live_cliques()
        assert target[0] not in seeded.postings(3)
        with pytest.raises(GraphError):
            seeded.clique(target[0])
        assert seeded.is_stale(3)

    def test_remove_then_readd_round_trip(self, seeded):
        seeded.apply_deltas([remove(2, 3), add(2, 3)])
        assert (2, 3) in seeded.live_cliques()

    def test_add_of_live_clique_rejected(self, seeded):
        with pytest.raises(StorageError):
            seeded.apply_deltas([add(0, 1, 2)])

    def test_remove_of_unknown_clique_rejected(self, seeded):
        with pytest.raises(StorageError):
            seeded.apply_deltas([remove(40, 41)])

    def test_top_k_spans_base_and_overlay(self, seeded):
        seeded.apply_deltas([add(10, 11, 12, 13)])
        top = seeded.top_k_largest(2)
        assert top[0] == (10, 11, 12, 13)
        assert len(top[1]) == 3

    def test_stats_reports_overlay(self, seeded):
        seeded.apply_deltas([add(8, 9), remove(2, 3)])
        stats = seeded.stats()
        assert stats["live"]["added"] == 1
        assert stats["live"]["tombstones"] == 1
        assert stats["live"]["tail_deltas"] == 2
        assert stats["num_cliques"] == len(SEED_CLIQUES)  # net zero


class TestDurability:
    def test_reopen_replays_tail(self, tmp_path):
        directory = tmp_path / "live"
        store = LiveCliqueStore.initialize(directory, SEED_CLIQUES)
        store.apply_deltas([add(8, 9), remove(2, 3)])
        expected = store.live_cliques()
        store.close()
        with LiveCliqueStore.open(directory) as reopened:
            assert reopened.live_cliques() == expected
            assert reopened.tail_length == 2
            assert reopened.last_seq == 2

    def test_seq_numbers_continue_after_reopen(self, tmp_path):
        directory = tmp_path / "live"
        store = LiveCliqueStore.initialize(directory)
        stamped = store.apply_deltas([add(1, 2)])
        assert [d.seq for d in stamped] == [1]
        store.close()
        with LiveCliqueStore.open(directory) as reopened:
            stamped = reopened.apply_deltas([add(3, 4)])
            assert [d.seq for d in stamped] == [2]

    def test_torn_wal_tail_truncated_on_open(self, tmp_path):
        directory = tmp_path / "live"
        store = LiveCliqueStore.initialize(directory, SEED_CLIQUES)
        store.apply_deltas([add(8, 9)])
        store.close()
        wal = directory / "wal-000000.log"
        with open(wal, "ab") as handle:
            handle.write(b"\x42")  # torn record start
        with LiveCliqueStore.open(directory) as reopened:
            assert (8, 9) in reopened.live_cliques()
            assert reopened.tail_length == 1


class TestCompaction:
    def test_compact_folds_tail(self, tmp_path):
        directory = tmp_path / "live"
        store = LiveCliqueStore.initialize(directory, SEED_CLIQUES)
        store.apply_deltas([add(8, 9), remove(2, 3)])
        expected = store.live_cliques()
        assert store.compact() == "gen-000001"
        assert store.tail_length == 0
        assert store.live_cliques() == expected
        assert store.generation_number == 1
        assert not store.is_stale(8)
        # Old generation and WAL are gone; reopen serves the same set.
        assert not (directory / "gen-000000").exists()
        assert not (directory / "wal-000000.log").exists()
        store.close()
        with LiveCliqueStore.open(directory) as reopened:
            assert reopened.live_cliques() == expected
        store.close()

    def test_compact_empty_tail_is_noop(self, seeded):
        assert seeded.compact() is None

    def test_compact_to_empty_store(self, tmp_path):
        directory = tmp_path / "live"
        store = LiveCliqueStore.initialize(directory)
        store.apply_deltas([add(1, 2)])
        store.apply_deltas([remove(1, 2), add(1,), add(2,)])
        store.apply_deltas([remove(1,), remove(2,)])
        assert store.compact() is None or store.live_cliques() == set()
        assert store.live_cliques() == set()
        store.close()
        with LiveCliqueStore.open(directory) as reopened:
            assert reopened.live_cliques() == set()

    def test_writes_during_no_lock_window_survive_compaction(self, tmp_path):
        # Deltas applied between rotate and commit land in the new WAL
        # and survive the swap as the new tail.
        directory = tmp_path / "live"
        store = LiveCliqueStore.initialize(directory, SEED_CLIQUES)
        store.apply_deltas([add(8, 9)])

        plan = FaultPlan(
            [FaultRule(operation="compaction", kind="latency",
                       path_contains="build", latency_seconds=0.05)],
            seed=1,
        )
        store._faults = plan
        racing: list = []

        def racer():
            racing.append(store.apply_deltas([add(10, 11)]))

        thread = threading.Thread(target=racer)
        thread.start()
        generation = store.compact()
        thread.join()
        assert generation == "gen-000001"
        assert (8, 9) in store.live_cliques()
        assert (10, 11) in store.live_cliques()
        store.close()
        with LiveCliqueStore.open(directory) as reopened:
            assert (10, 11) in reopened.live_cliques()

    def test_second_compaction_continues_generations(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live", SEED_CLIQUES)
        store.apply_deltas([add(8, 9)])
        assert store.compact() == "gen-000001"
        store.apply_deltas([add(10, 11)])
        assert store.compact() == "gen-000002"
        assert store.live_cliques() == set(SEED_CLIQUES) | {(8, 9), (10, 11)}
        store.close()


class TestCrashRecovery:
    """An injected failure at any compaction stage recovers consistently."""

    @pytest.mark.parametrize("stage", ["rotate", "build", "commit"])
    def test_fault_at_stage_recovers(self, tmp_path, stage):
        directory = tmp_path / "live"
        store = LiveCliqueStore.initialize(directory, SEED_CLIQUES)
        store.apply_deltas([add(8, 9), remove(2, 3)])
        expected = store.live_cliques()
        plan = FaultPlan(
            [FaultRule(operation="compaction", kind="io_error",
                       path_contains=stage)],
            seed=2,
        )
        store._faults = plan
        with pytest.raises(StorageError):
            store.compact()
        store.close()

        # Recovery from whatever the failed compaction left on disk.
        with LiveCliqueStore.open(directory) as reopened:
            assert reopened.live_cliques() == expected
            reopened.verify()
            # And the store still compacts cleanly afterwards.
            if reopened.tail_length:
                assert reopened.compact() is not None
            assert reopened.live_cliques() == expected

    def test_fault_at_cleanup_recovers(self, tmp_path):
        directory = tmp_path / "live"
        store = LiveCliqueStore.initialize(directory, SEED_CLIQUES)
        store.apply_deltas([add(8, 9)])
        expected = store.live_cliques()
        plan = FaultPlan(
            [FaultRule(operation="compaction", kind="io_error",
                       path_contains="cleanup")],
            seed=2,
        )
        store._faults = plan
        with pytest.raises(StorageError):
            store.compact()
        # The swap already committed: the store serves the new generation.
        assert store.generation_number == 1
        assert store.live_cliques() == expected
        store.close()
        with LiveCliqueStore.open(directory) as reopened:
            assert reopened.live_cliques() == expected
            # The stray old generation/WAL were garbage-collected.
            assert not (directory / "gen-000000").exists()
            assert not (directory / "wal-000000.log").exists()

    def test_manifest_is_the_commit_point(self, tmp_path):
        # A half-built generation directory without a manifest reference
        # is swept on open, not served.
        directory = tmp_path / "live"
        store = LiveCliqueStore.initialize(directory, SEED_CLIQUES)
        store.apply_deltas([add(8, 9)])
        expected = store.live_cliques()
        store.close()
        stray = directory / "gen-000007"
        stray.mkdir()
        (stray / "cliques.dat").write_bytes(b"half-built garbage")
        (directory / "wal-000099.log").write_bytes(b"stray log")
        with LiveCliqueStore.open(directory) as reopened:
            assert reopened.live_cliques() == expected
        assert not stray.exists()
        assert not (directory / "wal-000099.log").exists()

    def test_malformed_manifest_raises(self, tmp_path):
        directory = tmp_path / "live"
        LiveCliqueStore.initialize(directory).close()
        (directory / LIVE_MANIFEST_FILENAME).write_text("{not json")
        with pytest.raises(StorageError):
            LiveCliqueStore.open(directory)

    def test_unsupported_schema_raises(self, tmp_path):
        directory = tmp_path / "live"
        LiveCliqueStore.initialize(directory).close()
        manifest = json.loads((directory / LIVE_MANIFEST_FILENAME).read_text())
        manifest["schema"] = "repro.live/99"
        (directory / LIVE_MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            LiveCliqueStore.open(directory)


class TestSubscriptions:
    def test_subscriber_sees_adds_and_removes(self, seeded):
        events = []
        token = seeded.subscribe(9, events.append)
        seeded.apply_deltas([add(8, 9)])
        seeded.apply_deltas([remove(8, 9)])
        assert [(e.kind, e.vertices) for e in events] == [
            ("clique_added", (8, 9)),
            ("clique_removed", (8, 9)),
        ]
        assert all(e.vertex == 9 for e in events)
        assert [e.seq for e in events] == [1, 2]
        assert seeded.unsubscribe(token)
        seeded.apply_deltas([add(8, 9)])
        assert len(events) == 2

    def test_unrelated_vertex_not_notified(self, seeded):
        events = []
        seeded.subscribe(0, events.append)
        seeded.apply_deltas([add(8, 9)])
        assert events == []

    def test_unsubscribe_unknown_token(self, seeded):
        assert not seeded.unsubscribe(123456)

    def test_event_payload_shape(self, seeded):
        events = []
        seeded.subscribe(8, events.append)
        seeded.apply_deltas([add(8, 9)])
        payload = events[0].to_payload()
        assert payload == {
            "vertex": 8, "event": "clique_added", "clique": [8, 9], "seq": 1,
        }

    def test_callback_may_reenter_store(self, seeded):
        # Callbacks run outside the store lock; a reader callback must
        # not deadlock.
        seen = []
        seeded.subscribe(9, lambda event: seen.append(seeded.postings(9)))
        seeded.apply_deltas([add(8, 9)])
        assert len(seen) == 1


class TestBackgroundCompactor:
    def test_compactor_folds_past_threshold(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live", SEED_CLIQUES)
        compactor = store.start_compactor(tail_threshold=4, interval_seconds=0.01)
        for i in range(6):
            store.apply_deltas([add(100 + 2 * i, 101 + 2 * i)])
        deadline = threading.Event()
        for _ in range(500):
            if compactor.compactions >= 1:
                break
            deadline.wait(0.01)
        assert compactor.compactions >= 1
        assert store.generation_number >= 1
        expected = set(SEED_CLIQUES) | {
            (100 + 2 * i, 101 + 2 * i) for i in range(6)
        }
        assert store.live_cliques() == expected
        store.close()

    def test_compactor_error_reported_not_fatal(self, tmp_path):
        store = LiveCliqueStore.initialize(tmp_path / "live", SEED_CLIQUES)
        plan = FaultPlan(
            [FaultRule(operation="compaction", kind="io_error",
                       path_contains="build")],
            seed=4,
        )
        store._faults = plan
        errors = []
        compactor = store.start_compactor(
            tail_threshold=1, interval_seconds=0.01, on_error=errors.append
        )
        store.apply_deltas([add(8, 9)])
        for _ in range(500):
            if compactor.errors:
                break
            threading.Event().wait(0.01)
        assert compactor.errors >= 1
        assert errors
        # The store still serves and still compacts once the fault clears.
        assert (8, 9) in store.live_cliques()
        store.close()
