"""Hard-kill recovery: SIGKILL mid-compaction and mid-append.

A real crash is not an exception — the process vanishes with no chance
to clean up.  The children below are parked inside a compaction stage
(via an injected ``latency`` fault) or a WAL append loop when the parent
SIGKILLs them; the assertion is always the same: reopening the store
recovers a consistent, verifiable state containing every acknowledged
delta.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.live.deltas import ADD, CliqueDelta
from repro.live.store import LiveCliqueStore

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Ten two-vertex cliques the parent applies before handing over.
BASE_CLIQUES = [(2 * i, 2 * i + 1) for i in range(10)]

COMPACTION_CHILD = textwrap.dedent(
    """
    import sys

    from repro.faults import FaultPlan, FaultRule
    from repro.live.store import LiveCliqueStore

    directory, stage = sys.argv[1], sys.argv[2]
    plan = FaultPlan([
        FaultRule(operation="compaction", kind="latency",
                  path_contains=stage, latency_seconds=60.0),
    ])
    store = LiveCliqueStore.open(directory, fault_plan=plan)
    with open(directory + "/READY", "w") as marker:
        marker.write("parked at " + stage)
    store.compact()  # sleeps 60 s at `stage`; the parent kills us there
    """
)

APPEND_CHILD = textwrap.dedent(
    """
    import os
    import sys

    from repro.live.deltas import ADD, CliqueDelta
    from repro.live.store import LiveCliqueStore

    directory = sys.argv[1]
    store = LiveCliqueStore.open(directory)
    with open(directory + "/READY", "w") as marker:
        marker.write("appending")
    vertex = 1000
    while True:
        store.apply_deltas([CliqueDelta(ADD, (vertex, vertex + 1))])
        # Publish the marker atomically: a SIGKILL between truncate and
        # write would otherwise leave an empty ACKED for the parent.
        with open(directory + "/ACKED.tmp", "w") as acked:
            acked.write(str(vertex))
        os.replace(directory + "/ACKED.tmp", directory + "/ACKED")
        vertex += 2
    """
)


def launch(script, *args):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.Popen(
        [sys.executable, "-c", script, *args],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for(path: Path, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            return
        if process.poll() is not None:
            pytest.fail(f"child exited early with {process.returncode}")
        time.sleep(0.01)
    pytest.fail(f"child never created {path}")


@pytest.mark.parametrize("stage", ["rotate", "build", "commit", "cleanup"])
def test_sigkill_mid_compaction_recovers(tmp_path, stage):
    directory = tmp_path / "live"
    store = LiveCliqueStore.initialize(directory)
    store.apply_deltas([CliqueDelta(ADD, c) for c in BASE_CLIQUES])
    expected = store.live_cliques()
    store.close()

    child = launch(COMPACTION_CHILD, str(directory), stage)
    try:
        wait_for(directory / "READY", child)
        # Give the child time to march from READY into the parked stage.
        time.sleep(0.6)
        child.kill()
        child.wait(timeout=10)
    finally:
        if child.poll() is None:
            child.kill()
    (directory / "READY").unlink(missing_ok=True)

    with LiveCliqueStore.open(directory) as recovered:
        assert recovered.live_cliques() == expected
        recovered.verify()
        # The recovered store compacts cleanly from wherever the crash left it.
        if recovered.tail_length:
            assert recovered.compact() is not None
        assert recovered.live_cliques() == expected
        recovered.verify()


def test_sigkill_mid_append_keeps_acknowledged_deltas(tmp_path):
    directory = tmp_path / "live"
    store = LiveCliqueStore.initialize(directory)
    store.apply_deltas([CliqueDelta(ADD, c) for c in BASE_CLIQUES])
    store.close()

    child = launch(APPEND_CHILD, str(directory))
    try:
        wait_for(directory / "READY", child)
        wait_for(directory / "ACKED", child)
        time.sleep(0.3)  # let a few more appends land, then kill mid-flight
        child.kill()
        child.wait(timeout=10)
    finally:
        if child.poll() is None:
            child.kill()
    acked_vertex = int((directory / "ACKED").read_text())
    (directory / "READY").unlink(missing_ok=True)
    (directory / "ACKED").unlink(missing_ok=True)

    with LiveCliqueStore.open(directory) as recovered:
        live = recovered.live_cliques()
        # Every acknowledged append (marker written after apply_deltas
        # returned) must have survived the kill.
        assert (acked_vertex, acked_vertex + 1) in live
        assert set(BASE_CLIQUES) <= live
        recovered.verify()
        # And the log tail is clean enough to keep appending.
        recovered.apply_deltas([CliqueDelta(ADD, (5000, 5001))])
        assert (5000, 5001) in recovered.live_cliques()
