"""Shared test utilities: reference graphs and hypothesis strategies."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.graph.adjacency import AdjacencyGraph

# ---------------------------------------------------------------------------
# The paper's running example (Figure 1): 13 vertices, 25 edges.
# Letters map to ints in the order below; h = 5 with H = {a, b, c, d, e}.
# ---------------------------------------------------------------------------
FIGURE1_NAMES = "abcdewxyzrstq"
FIGURE1_ID = {name: index for index, name in enumerate(FIGURE1_NAMES)}
FIGURE1_NAME = {index: name for name, index in FIGURE1_ID.items()}

_FIGURE1_EDGES_BY_NAME = [
    # core (G_H): M_H = {abc, bcde}
    ("a", "b"), ("a", "c"), ("b", "c"), ("b", "d"), ("b", "e"),
    ("c", "d"), ("c", "e"), ("d", "e"),
    # core-periphery (E_HHnb)
    ("a", "w"), ("a", "x"), ("a", "y"),
    ("b", "w"), ("b", "x"),
    ("c", "w"), ("c", "x"), ("c", "y"),
    ("d", "r"), ("d", "z"),
    ("e", "s"), ("e", "y"),
    # periphery-periphery (G_Hnb): exactly these three per the paper
    ("w", "x"), ("s", "y"), ("r", "z"),
    # the two edges incident to q and t (outside H+)
    ("s", "t"), ("r", "q"),
]

FIGURE1_EDGES = [
    (FIGURE1_ID[u], FIGURE1_ID[v]) for u, v in _FIGURE1_EDGES_BY_NAME
]


def figure1_graph() -> AdjacencyGraph:
    """The paper's Figure 1 example graph."""
    return AdjacencyGraph.from_edges(FIGURE1_EDGES)


def names_of(clique) -> str:
    """Render a Figure 1 clique as its letter string (sorted)."""
    return "".join(sorted(FIGURE1_NAME[v] for v in clique))


# ---------------------------------------------------------------------------
# Random graphs
# ---------------------------------------------------------------------------
def seeded_gnp(n: int, p: float, seed: int) -> AdjacencyGraph:
    """Deterministic G(n, p) for tests that need specific shapes."""
    rng = random.Random(seed)
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < p
    ]
    return AdjacencyGraph.from_edges(edges, vertices=range(n))


@st.composite
def small_graphs(draw, max_vertices: int = 14) -> AdjacencyGraph:
    """Hypothesis strategy: arbitrary small graphs (isolated vertices too)."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(st.lists(st.sampled_from(pairs), unique=True) if pairs else st.just([]))
    return AdjacencyGraph.from_edges(chosen, vertices=range(n))


def cliques_of(iterable) -> set[frozenset]:
    """Normalise an iterable of cliques to a set of frozensets."""
    return {frozenset(c) for c in iterable}
