"""Unit tests for the work partitioner."""

import pytest

from repro.core.hstar import extract_hstar_graph
from repro.parallel.partition import (
    OVERSUBSCRIPTION,
    chunk_lift_tasks,
    chunk_tree_tasks,
    lift_tasks,
    serialize_star,
    tree_tasks,
)
from repro.storage.diskgraph import DiskGraph
from repro.storage.partitions import HnbPartitionStore

from tests.helpers import figure1_graph, seeded_gnp


@pytest.fixture
def star():
    return extract_hstar_graph(figure1_graph())


class TestTreeTasks:
    def test_one_core_task_per_core_vertex(self, star):
        tasks = tree_tasks(star)
        core = [t for t in tasks if t.kind == "core"]
        assert sorted(t.vertex for t in core) == sorted(star.core)

    def test_one_anchor_task_per_connected_periphery_vertex(self, star):
        tasks = tree_tasks(star)
        anchors = [t for t in tasks if t.kind == "anchor"]
        # Every periphery vertex of the star graph neighbors some core
        # vertex by definition, so each gets an anchor task.
        assert sorted(t.vertex for t in anchors) == sorted(star.periphery)
        for task in anchors:
            assert set(task.anchors) <= set(star.core)

    def test_indices_are_dense_and_ordered(self, star):
        tasks = tree_tasks(star)
        assert [t.index for t in tasks] == list(range(len(tasks)))

    def test_chunking_partitions_tasks(self, star):
        tasks = tree_tasks(star)
        chunks = chunk_tree_tasks(tasks, workers=3)
        flattened = sorted(t.index for chunk in chunks for t in chunk)
        assert flattened == [t.index for t in tasks]
        assert len(chunks) <= OVERSUBSCRIPTION * 3

    def test_chunking_empty(self):
        assert chunk_tree_tasks([], workers=4) == []


class TestLiftTasks:
    @pytest.fixture
    def store(self, tmp_path):
        graph = seeded_gnp(40, 0.2, seed=11)
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        star = extract_hstar_graph(disk)
        members = sorted(star.periphery)
        store = HnbPartitionStore.build(
            disk, members, tmp_path / "parts", memory_budget_units=24
        )
        yield star, store
        store.close()

    def test_tasks_follow_input_order(self, store):
        star, store = store
        sets = [star.common_periphery([v]) for v in sorted(star.core)]
        sets = [s for s in sets if s]
        tasks = lift_tasks(sets, store)
        assert [t.index for t in tasks] == list(range(len(tasks)))
        for task, shared in zip(tasks, sets):
            assert set(task.shared) == set(shared)
            assert set(task.partition_indices) == set(store.partitions_for(shared))

    def test_chunks_cover_all_tasks_with_local_paths(self, store):
        star, store = store
        sets = [star.common_periphery([v]) for v in sorted(star.core)]
        sets = [s for s in sets if s]
        tasks = lift_tasks(sets, store)
        chunks = chunk_lift_tasks(tasks, store, workers=2)
        seen = sorted(t.index for chunk in chunks for t in chunk.tasks)
        assert seen == [t.index for t in tasks]
        for chunk in chunks:
            needed = {i for t in chunk.tasks for i in t.partition_indices}
            assert needed == set(chunk.paths)

    def test_empty_tasks(self, store):
        _, store = store
        assert chunk_lift_tasks([], store, workers=2) == []


class TestSerializeStar:
    def test_set_payload_is_core_only_and_picklable(self, star):
        import pickle

        payload = serialize_star(star, kernel="set")
        assert payload["kernel"] == "set"
        assert set(payload["core_adjacency"]) == set(star.core)
        for v, neighbors in payload["core_adjacency"].items():
            assert set(neighbors) == set(star.core_neighbors(v))
        assert pickle.loads(pickle.dumps(payload)) == payload

    def test_bitset_payload_rehydrates_the_core_graph(self, star):
        import pickle

        from repro.kernel import CompactGraph

        payload = pickle.loads(pickle.dumps(serialize_star(star)))
        assert payload["kernel"] == "bitset"
        compact = CompactGraph.from_csr(
            payload["labels"], payload["indptr"], payload["indices"]
        )
        reference = star.core_compact()
        assert compact.labels == reference.labels
        assert compact.masks == reference.masks

    def test_bitset_payload_is_smaller_on_a_real_star(self):
        import pickle

        star = extract_hstar_graph(seeded_gnp(120, 0.2, seed=5))
        set_bytes = len(pickle.dumps(serialize_star(star, kernel="set")))
        bitset_bytes = len(pickle.dumps(serialize_star(star, kernel="bitset")))
        assert bitset_bytes < set_bytes

    def test_unknown_kernel_rejected(self, star):
        with pytest.raises(ValueError):
            serialize_star(star, kernel="simd")
