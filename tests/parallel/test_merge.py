"""Merger tests: determinism and loud failure on malformed results."""

import pytest

from repro.parallel.merge import flatten_indexed, merge_lift_results, merge_tree_results
from repro.parallel.partition import LiftTask, TreeTask
from repro.core.hstar import StarGraph


def _tiny_star():
    # Core triangle {0,1,2} with periphery vertex 9 adjacent to 0 and 1.
    return StarGraph(
        core=frozenset({0, 1, 2}),
        neighbor_lists={
            0: frozenset({1, 2, 9}),
            1: frozenset({0, 2, 9}),
            2: frozenset({0, 1}),
        },
    )


class TestFlatten:
    def test_duplicate_index_rejected(self):
        with pytest.raises(ValueError, match="duplicate task index"):
            flatten_indexed([[(0, ())], [(0, ())]])

    def test_order_independent(self):
        a = flatten_indexed([[(1, "b")], [(0, "a")]])
        b = flatten_indexed([[(0, "a"), (1, "b")]])
        assert a == b


class TestMergeTree:
    def test_missing_task_rejected(self):
        star = _tiny_star()
        tasks = [TreeTask(index=0, kind="core", vertex=0)]
        with pytest.raises(ValueError, match="missing task indices"):
            merge_tree_results(tasks, [], star)

    def test_core_kernels_filtered_by_common_periphery(self):
        star = _tiny_star()
        tasks = [
            TreeTask(index=0, kind="core", vertex=0),
            TreeTask(index=1, kind="anchor", vertex=9, anchors=(0, 1)),
        ]
        chunk_results = [
            [(0, ((0, 1, 2),))],  # M_H member; HNB({0,1,2}) is empty
            [(1, ((0, 1),))],  # kernel within nb(9) ∩ H
        ]
        star_cliques, core_maximal = merge_tree_results(tasks, chunk_results, star)
        assert core_maximal == {frozenset({0, 1, 2})}
        assert star_cliques == [frozenset({0, 1, 2}), frozenset({0, 1, 9})]

    def test_kernel_with_common_periphery_not_a_star_clique(self):
        star = _tiny_star()
        tasks = [TreeTask(index=0, kind="core", vertex=0)]
        # Pretend {0,1} were core-maximal: HNB({0,1}) = {9} is nonempty,
        # so it belongs to M_H but not to the H*-max-clique set.
        star_cliques, core_maximal = merge_tree_results(
            tasks, [[(0, ((0, 1),))]], star
        )
        assert core_maximal == {frozenset({0, 1})}
        assert star_cliques == []


class TestMergeLift:
    def test_results_keyed_by_shared_set_and_pages_summed(self):
        tasks = [
            LiftTask(index=0, shared=(7, 9), partition_indices=(0,)),
            LiftTask(index=1, shared=(3,), partition_indices=(1,)),
        ]
        chunk_results = [
            ([(1, ((3,),))], 2),
            ([(0, ((7, 9),))], 5),
        ]
        max_cliques_of, pages = merge_lift_results(tasks, chunk_results)
        assert pages == 7
        assert max_cliques_of[frozenset({7, 9})] == [frozenset({7, 9})]
        assert max_cliques_of[frozenset({3})] == [frozenset({3})]

    def test_missing_lift_task_rejected(self):
        tasks = [LiftTask(index=0, shared=(1,), partition_indices=(0,))]
        with pytest.raises(ValueError, match="missing lift task"):
            merge_lift_results(tasks, [([], 0)])
