"""Parallel-vs-serial equivalence: the subsystem's headline guarantee.

Every test triangulates at least two of: serial ``ExtMCE``,
``ParallelExtMCE`` (various worker counts), and the Bron–Kerbosch /
parallel Bron–Kerbosch baselines.
"""

import pytest

from repro import (
    AdjacencyGraph,
    CliqueFileSink,
    DiskGraph,
    ExtMCE,
    ExtMCEConfig,
    MemoryModel,
    ParallelExtMCE,
    bron_kerbosch_maximal_cliques,
    parallel_bron_kerbosch_maximal_cliques,
)
from repro.generators import powerlaw_cluster_graph

from tests.helpers import cliques_of, figure1_graph, seeded_gnp


def _enumerate(graph, tmp_path, workers, tag=""):
    disk = DiskGraph.create(tmp_path / f"g{tag}_{workers}.bin", graph)
    config = ExtMCEConfig(workdir=tmp_path / f"w{tag}_{workers}", workers=workers)
    driver = ParallelExtMCE if workers > 1 else ExtMCE
    return list(driver(disk, config).enumerate_cliques())


class TestScaleFreeEquivalence:
    @pytest.mark.parametrize("seed", [1, 42])
    def test_parallel_matches_serial_and_baseline(self, tmp_path, seed):
        graph = powerlaw_cluster_graph(220, 4, 0.7, seed=seed)
        serial = _enumerate(graph, tmp_path, workers=1)
        parallel = _enumerate(graph, tmp_path, workers=4)
        oracle = cliques_of(bron_kerbosch_maximal_cliques(graph))
        assert parallel == serial  # identical stream, not just identical set
        assert cliques_of(parallel) == oracle
        assert cliques_of(
            parallel_bron_kerbosch_maximal_cliques(graph, workers=2)
        ) == oracle

    def test_gnp_with_memory_budget(self, tmp_path):
        graph = seeded_gnp(80, 0.15, seed=13)
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        budget = 2 * graph.num_edges + graph.num_vertices
        algo = ParallelExtMCE(
            disk,
            ExtMCEConfig(
                workdir=tmp_path / "w", workers=2, memory_budget_units=budget
            ),
            memory=MemoryModel(budget=budget),
        )
        assert cliques_of(algo.enumerate_cliques()) == cliques_of(
            bron_kerbosch_maximal_cliques(graph)
        )


class TestEdgeCases:
    def test_empty_graph(self, tmp_path):
        graph = AdjacencyGraph()
        assert _enumerate(graph, tmp_path, workers=4) == []

    def test_isolated_vertices_only(self, tmp_path):
        graph = AdjacencyGraph.from_edges([], vertices=range(5))
        result = _enumerate(graph, tmp_path, workers=4)
        assert cliques_of(result) == {frozenset({v}) for v in range(5)}

    def test_single_maximal_clique(self, tmp_path):
        k5 = AdjacencyGraph.from_edges(
            [(u, v) for u in range(5) for v in range(u + 1, 5)]
        )
        result = _enumerate(k5, tmp_path, workers=4)
        assert result == [frozenset(range(5))]

    def test_graph_smaller_than_worker_count(self, tmp_path):
        path3 = AdjacencyGraph.from_edges([(0, 1), (1, 2)])
        result = _enumerate(path3, tmp_path, workers=4)
        assert cliques_of(result) == {frozenset({0, 1}), frozenset({1, 2})}

    def test_figure1(self, tmp_path):
        graph = figure1_graph()
        serial = _enumerate(graph, tmp_path, workers=1)
        parallel = _enumerate(graph, tmp_path, workers=3)
        assert parallel == serial
        assert cliques_of(parallel) == cliques_of(
            bron_kerbosch_maximal_cliques(graph)
        )


class TestWorkerCountInvariance:
    def test_canonical_report_byte_identical(self, tmp_path):
        graph = powerlaw_cluster_graph(150, 3, 0.6, seed=7)
        outputs = []
        for workers in (1, 2, 4):
            cliques = _enumerate(graph, tmp_path, workers, tag="inv")
            out = tmp_path / f"report_{workers}.txt"
            with CliqueFileSink(out, canonical=True) as sink:
                for clique in cliques:
                    sink.accept(clique)
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_parallel_bk_order_invariant(self):
        graph = seeded_gnp(60, 0.2, seed=3)
        one = parallel_bron_kerbosch_maximal_cliques(graph, workers=1)
        three = parallel_bron_kerbosch_maximal_cliques(graph, workers=3)
        assert one == three


class TestReportParity:
    def test_per_step_counters_match_serial(self, tmp_path):
        graph = powerlaw_cluster_graph(150, 3, 0.6, seed=9)
        disk_s = DiskGraph.create(tmp_path / "s.bin", graph)
        serial = ExtMCE(disk_s, ExtMCEConfig(workdir=tmp_path / "ws"))
        list(serial.enumerate_cliques())
        disk_p = DiskGraph.create(tmp_path / "p.bin", graph)
        parallel = ParallelExtMCE(
            disk_p, ExtMCEConfig(workdir=tmp_path / "wp", workers=2)
        )
        list(parallel.enumerate_cliques())
        assert parallel.fallback_steps == 0
        assert serial.report.num_recursions == parallel.report.num_recursions
        for s_step, p_step in zip(serial.report.steps, parallel.report.steps):
            assert s_step.cliques_emitted == p_step.cliques_emitted
            assert s_step.cliques_suppressed == p_step.cliques_suppressed
            assert s_step.tree_nodes == p_step.tree_nodes
            assert s_step.hashtable_entries == p_step.hashtable_entries
