"""Parallel telemetry: per-worker files folded into one coherent trace."""

import json

from repro import DiskGraph, ExtMCEConfig, ParallelExtMCE, load_trace, merge_traces
from repro.telemetry import TraceWriter

from tests.helpers import seeded_gnp


class TestMergeTraces:
    def test_merge_orders_by_worker_then_seq(self, tmp_path):
        a = tmp_path / "worker_a.jsonl"
        b = tmp_path / "worker_b.jsonl"
        with TraceWriter(b) as w:
            w.emit("beta0")
            w.emit("beta1")
        with TraceWriter(a) as w:
            w.emit("alpha0")
        merged = merge_traces([b, a])
        assert [e["event"] for e in merged] == ["alpha0", "beta0", "beta1"]
        assert [e["seq"] for e in merged] == [0, 1, 2]
        assert merged[0]["worker"] == "worker_a"

    def test_missing_files_skipped(self, tmp_path):
        present = tmp_path / "worker_x.jsonl"
        with TraceWriter(present) as w:
            w.emit("only")
        merged = merge_traces([present, tmp_path / "worker_gone.jsonl"])
        assert [e["event"] for e in merged] == ["only"]

    def test_duplicate_worker_labels_keep_both_streams(self, tmp_path):
        """Events already carrying a ``worker`` field (e.g. re-merged
        output) must not be relabeled by the file they sit in, and two
        files claiming the same label must interleave by seq, losing
        nothing."""
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text(
            '{"seq": 0, "event": "x0", "worker": "shared"}\n'
            '{"seq": 2, "event": "x2", "worker": "shared"}\n'
        )
        b.write_text('{"seq": 1, "event": "y1", "worker": "shared"}\n')
        merged = merge_traces([a, b])
        assert [e["event"] for e in merged] == ["x0", "y1", "x2"]
        assert all(e["worker"] == "shared" for e in merged)
        assert [e["seq"] for e in merged] == [0, 1, 2]

    def test_events_without_seq_sort_first_and_are_renumbered(self, tmp_path):
        path = tmp_path / "worker_w.jsonl"
        path.write_text(
            '{"seq": 5, "event": "late"}\n'
            '{"event": "no_seq"}\n'
        )
        merged = merge_traces([path])
        assert [e["event"] for e in merged] == ["no_seq", "late"]
        assert [e["seq"] for e in merged] == [0, 1]

    def test_empty_file_contributes_nothing(self, tmp_path):
        empty = tmp_path / "worker_empty.jsonl"
        empty.write_text("")
        full = tmp_path / "worker_full.jsonl"
        with TraceWriter(full) as w:
            w.emit("real")
        merged = merge_traces([empty, full])
        assert [e["event"] for e in merged] == ["real"]

    def test_no_files_at_all(self, tmp_path):
        assert merge_traces([]) == []
        assert merge_traces([tmp_path / "ghost.jsonl"]) == []

    def test_merge_is_input_order_independent(self, tmp_path):
        paths = []
        for name in ("worker_c", "worker_a", "worker_b"):
            path = tmp_path / f"{name}.jsonl"
            with TraceWriter(path) as w:
                w.emit(f"{name}_event")
            paths.append(path)
        forward = merge_traces(paths)
        backward = merge_traces(reversed(paths))
        assert forward == backward

    def test_merged_seq_is_strictly_monotone(self, tmp_path):
        for name in ("worker_a", "worker_b", "worker_c"):
            with TraceWriter(tmp_path / f"{name}.jsonl") as w:
                for i in range(4):
                    w.emit("tick", i=i)
        merged = merge_traces(sorted(tmp_path.glob("*.jsonl")))
        seqs = [e["seq"] for e in merged]
        assert seqs == list(range(12))

    def test_absorb_renumbers_and_keeps_payload(self, tmp_path):
        worker = tmp_path / "worker_w.jsonl"
        with TraceWriter(worker) as w:
            w.emit("chunk_done", tasks=3)
        main = tmp_path / "main.jsonl"
        with TraceWriter(main) as writer:
            writer.emit("run_started")
            writer.absorb(merge_traces([worker]))
        events = load_trace(main)
        assert [e["event"] for e in events] == ["run_started", "chunk_done"]
        assert [e["seq"] for e in events] == [0, 1]
        assert events[1]["tasks"] == 3
        assert events[1]["worker"] == "worker_w"
        assert events[1]["worker_seq"] == 0


class TestDriverTraceIntegration:
    def test_parallel_run_produces_single_coherent_trace(self, tmp_path):
        graph = seeded_gnp(60, 0.15, seed=5)
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        trace = tmp_path / "run.jsonl"
        algo = ParallelExtMCE(
            disk,
            ExtMCEConfig(workdir=tmp_path / "w", workers=2, trace_path=trace),
        )
        list(algo.enumerate_cliques())
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {e["event"] for e in events}
        assert "run_started" in kinds and "run_completed" in kinds
        assert "parallel_step_completed" in kinds
        # Worker events were folded in and the merged file still has one
        # strictly monotone seq counter.
        assert any("worker" in e for e in events)
        seqs = [e["seq"] for e in events]
        assert seqs == list(range(len(seqs)))
        # The per-worker spill directory is cleaned up after the fold-in.
        assert not (tmp_path / "w" / "worker_traces").exists()
