"""Executor tests: pool vs inline equivalence, fallback, worker traces."""

import pytest

from repro.core.clique_tree import enumerate_star_cliques
from repro.core.hstar import extract_hstar_graph
from repro.parallel.executor import StepExecutor
from repro.parallel.merge import merge_tree_results
from repro.parallel.partition import chunk_tree_tasks, serialize_star, tree_tasks

from tests.helpers import cliques_of, seeded_gnp


@pytest.fixture
def star():
    return extract_hstar_graph(seeded_gnp(50, 0.18, seed=21))


def _run_tree(executor, star):
    tasks = tree_tasks(star)
    chunks = chunk_tree_tasks(tasks, workers=2)
    results = executor.map_tree(chunks)
    return merge_tree_results(tasks, results, star)


class TestPoolVersusInline:
    def test_pool_and_inline_agree_with_serial(self, star):
        expected = cliques_of(enumerate_star_cliques(star))
        with StepExecutor(1, serialize_star(star)) as inline:
            inline_cliques, inline_core = _run_tree(inline, star)
        with StepExecutor(2, serialize_star(star)) as pooled:
            pooled_cliques, pooled_core = _run_tree(pooled, star)
        assert cliques_of(inline_cliques) == expected
        assert inline_cliques == pooled_cliques  # order, not just set
        assert inline_core == pooled_core

    def test_workers_one_never_creates_pool(self, star):
        with StepExecutor(1, serialize_star(star)) as executor:
            assert executor._pool is None
            assert not executor.fell_back

    def test_empty_chunk_list(self, star):
        with StepExecutor(2, serialize_star(star)) as executor:
            assert executor.map_tree([]) == []


class TestFallback:
    def test_dead_pool_is_rebuilt_not_abandoned(self, star):
        expected = cliques_of(enumerate_star_cliques(star))
        with StepExecutor(2, serialize_star(star)) as executor:
            # Simulate the pool dying under the driver: terminate it
            # out-of-band, then ask for work.  Submission fails, the
            # executor rebuilds the pool and completes on it.
            executor._pool.terminate()
            executor._pool.join()
            star_cliques, _ = _run_tree(executor, star)
            assert executor.stats.pool_rebuilds >= 1
            assert not executor.fell_back
            assert executor._pool is not None
        assert cliques_of(star_cliques) == expected

    def test_pool_creation_failure_falls_back(self, star, monkeypatch):
        import multiprocessing

        def boom(*args, **kwargs):
            raise OSError("no semaphores here")

        monkeypatch.setattr(multiprocessing, "Pool", boom)
        with StepExecutor(4, serialize_star(star)) as executor:
            assert executor.fell_back
            star_cliques, _ = _run_tree(executor, star)
        assert cliques_of(star_cliques) == cliques_of(enumerate_star_cliques(star))


class TestWorkerTraces:
    def test_workers_write_private_flushed_trace_files(self, star, tmp_path):
        trace_dir = tmp_path / "wt"
        with StepExecutor(2, serialize_star(star), trace_dir=trace_dir) as executor:
            _run_tree(executor, star)
        from repro.telemetry import load_trace

        files = sorted(trace_dir.glob("worker_*.jsonl"))
        assert files, "workers should have written per-process trace files"
        total = 0
        for path in files:
            events = [e for e in load_trace(path)]
            seqs = [e["seq"] for e in events]
            assert seqs == list(range(len(seqs)))  # per-file monotone seq
            total += sum(1 for e in events if e["event"] == "tree_chunk_completed")
        tasks = tree_tasks(star)
        assert total == len(chunk_tree_tasks(tasks, workers=2))
