"""Executor tests: pool vs inline equivalence, fallback, worker traces,
work stealing, and result spooling."""

import pytest

from repro.core.clique_tree import enumerate_star_cliques
from repro.core.hstar import extract_hstar_graph
from repro.parallel.executor import StepExecutor
from repro.parallel.merge import merge_tree_results
from repro.parallel.partition import chunk_tree_tasks, serialize_star, tree_tasks
from repro.parallel.scheduler import GrainPolicy, ParallelEngine

from tests.helpers import cliques_of, seeded_gnp


@pytest.fixture
def star():
    return extract_hstar_graph(seeded_gnp(50, 0.18, seed=21))


def _run_tree(executor, star, workers=2, oversubscription=4):
    tasks = tree_tasks(star)
    chunks = chunk_tree_tasks(tasks, workers=workers, oversubscription=oversubscription)
    results = executor.map_tree(chunks)
    return merge_tree_results(tasks, results, star)


class TestPoolVersusInline:
    def test_pool_and_inline_agree_with_serial(self, star):
        expected = cliques_of(enumerate_star_cliques(star))
        with StepExecutor(1, serialize_star(star)) as inline:
            inline_cliques, inline_core = _run_tree(inline, star)
        with StepExecutor(2, serialize_star(star)) as pooled:
            pooled_cliques, pooled_core = _run_tree(pooled, star)
        assert cliques_of(inline_cliques) == expected
        assert inline_cliques == pooled_cliques  # order, not just set
        assert inline_core == pooled_core

    def test_workers_one_never_creates_pool(self, star):
        with StepExecutor(1, serialize_star(star)) as executor:
            assert executor.engine.pool is None
            assert not executor.fell_back

    def test_empty_chunk_list(self, star):
        with StepExecutor(2, serialize_star(star)) as executor:
            assert executor.map_tree([]) == []


class TestFallback:
    def test_dead_pool_is_rebuilt_not_abandoned(self, star):
        expected = cliques_of(enumerate_star_cliques(star))
        with StepExecutor(2, serialize_star(star)) as executor:
            # Simulate the pool dying under the driver: terminate it
            # out-of-band, then ask for work.  Submission fails, the
            # executor rebuilds the pool and completes on it.
            executor.engine.pool.terminate()
            executor.engine.pool.join()
            star_cliques, _ = _run_tree(executor, star)
            assert executor.stats.pool_rebuilds >= 1
            assert not executor.fell_back
            assert executor.engine.pool is not None
        assert cliques_of(star_cliques) == expected

    def test_pool_creation_failure_falls_back(self, star, monkeypatch):
        import multiprocessing

        def boom(*args, **kwargs):
            raise OSError("no semaphores here")

        monkeypatch.setattr(multiprocessing, "Pool", boom)
        with StepExecutor(4, serialize_star(star)) as executor:
            assert executor.fell_back
            star_cliques, _ = _run_tree(executor, star)
        assert cliques_of(star_cliques) == cliques_of(enumerate_star_cliques(star))


class TestEngineSharing:
    def test_engine_pool_persists_across_steps(self, star):
        expected = cliques_of(enumerate_star_cliques(star))
        with ParallelEngine(2) as engine:
            first_pool = engine.pool
            assert first_pool is not None
            for _ in range(2):  # two "steps" against the same warm pool
                descriptor = engine.publish_star(star, "set")
                with StepExecutor(engine, descriptor) as executor:
                    star_cliques, _ = _run_tree(executor, star)
                assert cliques_of(star_cliques) == expected
                engine.retire_segment()
            assert engine.pool is first_pool

    def test_shm_descriptor_ships_no_graph_payload(self, star):
        with ParallelEngine(2) as engine:
            descriptor = engine.publish_star(star, "set")
            assert "shm" in descriptor, "shm publication should succeed on Linux"
            assert "inband" not in descriptor  # the graph stays out of the pipe
            with StepExecutor(engine, descriptor) as executor:
                star_cliques, _ = _run_tree(executor, star)
                assert executor.shm_bytes == descriptor["shm"]["nbytes"] > 0
                assert executor.payload_bytes > 0  # descriptors were accounted
        assert cliques_of(star_cliques) == cliques_of(enumerate_star_cliques(star))


class TestWorkStealing:
    def test_forced_splits_preserve_merged_stream(self, star):
        expected_cliques, expected_core = None, None
        with StepExecutor(1, serialize_star(star)) as inline:
            expected_cliques, expected_core = _run_tree(inline, star)
        with ParallelEngine(2) as engine:
            # A zero-length slice makes every chunk split whenever the
            # queue is dry: maximum steal traffic, same stream.
            engine.policy = GrainPolicy("fine", oversubscription=8, split_after_seconds=0.0)
            descriptor = engine.publish_star(star, "set")
            with StepExecutor(engine, descriptor) as executor:
                tasks = tree_tasks(star)
                chunks = chunk_tree_tasks(tasks, workers=1, oversubscription=1)
                assert len(chunks) == 1  # single chunk: the queue is dry instantly
                results = executor.map_tree(chunks)
                stolen_cliques, stolen_core = merge_tree_results(tasks, results, star)
                assert executor.tasks_split >= 1
                assert executor.tasks_stolen >= 1
                assert not executor.stats.any_recovery  # stealing is not recovery
        assert stolen_cliques == expected_cliques
        assert stolen_core == expected_core

    def test_coarse_grain_never_splits(self, star):
        with ParallelEngine(2, task_grain="coarse") as engine:
            descriptor = engine.publish_star(star, "set")
            with StepExecutor(engine, descriptor) as executor:
                star_cliques, _ = _run_tree(executor, star)
                assert executor.tasks_split == 0
                assert executor.tasks_stolen == 0
        assert cliques_of(star_cliques) == cliques_of(enumerate_star_cliques(star))


class TestSpooling:
    def test_oversized_results_spool_to_disk(self, star, tmp_path):
        expected = cliques_of(enumerate_star_cliques(star))
        spool_dir = tmp_path / "spool"
        with StepExecutor(
            2, serialize_star(star), spool_dir=spool_dir, spool_threshold=1
        ) as executor:
            star_cliques, _ = _run_tree(executor, star)
            assert executor.spooled_chunks >= 1
            # every spool file is consumed and removed after the merge
            assert list(spool_dir.glob("chunk_*.pkl")) == []
        assert cliques_of(star_cliques) == expected


class TestWorkerTraces:
    def test_workers_write_private_flushed_trace_files(self, star, tmp_path):
        trace_dir = tmp_path / "wt"
        with StepExecutor(2, serialize_star(star), trace_dir=trace_dir) as executor:
            _run_tree(executor, star)
        from repro.telemetry import load_trace

        files = sorted(trace_dir.glob("worker_*.jsonl"))
        assert files, "workers should have written per-process trace files"
        total = 0
        for path in files:
            events = [e for e in load_trace(path)]
            seqs = [e["seq"] for e in events]
            assert seqs == list(range(len(seqs)))  # per-file monotone seq
            total += sum(1 for e in events if e["event"] == "tree_chunk_completed")
        tasks = tree_tasks(star)
        # >= rather than ==: a split chunk completes as several events
        assert total >= len(chunk_tree_tasks(tasks, workers=2))
