"""Tier-1 smoke test: a 2-worker run must finish, fast, every time.

Pool bugs tend to manifest as *hangs* (a worker waiting on a parent that
is waiting on the worker), which a plain test would turn into a pytest
timeout hours later.  Running the enumeration on a watchdog thread turns
a deadlock into a fast, attributable failure.
"""

import threading

from repro import DiskGraph, ExtMCEConfig, ParallelExtMCE

from tests.helpers import seeded_gnp

SMOKE_TIMEOUT_SECONDS = 120


def test_two_worker_enumeration_completes_within_timeout(tmp_path):
    graph = seeded_gnp(60, 0.15, seed=5)
    disk = DiskGraph.create(tmp_path / "g.bin", graph)
    algo = ParallelExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w", workers=2))
    outcome: dict = {}

    def run() -> None:
        try:
            outcome["cliques"] = list(algo.enumerate_cliques())
        except BaseException as error:  # surfaced below, not swallowed
            outcome["error"] = error

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    thread.join(SMOKE_TIMEOUT_SECONDS)
    assert not thread.is_alive(), (
        f"2-worker enumeration did not finish within {SMOKE_TIMEOUT_SECONDS}s "
        "— likely a pool deadlock"
    )
    assert "error" not in outcome, f"enumeration raised: {outcome.get('error')!r}"
    assert len(outcome["cliques"]) > 0
