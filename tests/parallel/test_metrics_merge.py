"""Worker metrics fold back into the driver registry, like traces do."""

from __future__ import annotations

from repro import DiskGraph, ExtMCEConfig, ParallelExtMCE, metrics
from repro.metrics import counter_value
from tests.helpers import seeded_gnp


def _run(tmp_path, live_metrics, workers=2, **config_kwargs):
    graph = seeded_gnp(70, 0.15, seed=6)
    disk = DiskGraph.create(tmp_path / "g.bin", graph)
    config = ExtMCEConfig(
        workdir=tmp_path / "w",
        workers=workers,
        metrics_path=tmp_path / "metrics.json",
        **config_kwargs,
    )
    algo = ParallelExtMCE(disk, config)
    stream = list(algo.enumerate_cliques())
    return stream, metrics.load_snapshot(tmp_path / "metrics.json")


class TestWorkerMetricsMerge:
    def test_worker_side_counters_reach_the_driver_snapshot(
        self, tmp_path, live_metrics
    ):
        stream, snapshot = _run(tmp_path, live_metrics)
        # Chunk execution happens in worker processes; seeing nonzero
        # chunk totals in the driver's snapshot proves the merge ran.
        chunks = counter_value(snapshot, "repro_parallel_chunks_total")
        assert chunks > 0
        latency = [
            e for e in snapshot["metrics"]
            if e["name"] == "repro_parallel_chunk_seconds"
        ]
        assert sum(e["count"] for e in latency) == chunks
        # Kernel subproblems also ran worker-side.
        assert counter_value(snapshot, "repro_kernel_subproblems_total") > 0
        assert counter_value(snapshot, "repro_parallel_payload_bytes_total") > 0

    def test_driver_totals_match_stream(self, tmp_path, live_metrics):
        stream, snapshot = _run(tmp_path, live_metrics)
        assert counter_value(snapshot, "repro_mce_cliques_emitted_total") == len(stream)

    def test_worker_metrics_dir_cleaned_up(self, tmp_path, live_metrics):
        _run(tmp_path, live_metrics)
        assert not (tmp_path / "w" / "worker_metrics").exists()

    def test_disabled_metrics_leave_no_artifacts(self, tmp_path):
        graph = seeded_gnp(50, 0.15, seed=6)
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        config = ExtMCEConfig(workdir=tmp_path / "w", workers=2)
        algo = ParallelExtMCE(disk, config)
        assert not metrics.enabled()
        list(algo.enumerate_cliques())
        assert not metrics.enabled()
        assert not (tmp_path / "w" / "worker_metrics").exists()
        assert not (tmp_path / "metrics.json").exists()

    def test_metrics_survive_chunk_faults(self, tmp_path, live_metrics):
        from repro.faults import FaultPlan, FaultRule

        plan = FaultPlan(
            [FaultRule(operation="chunk", kind="worker_error", probability=1.0,
                       max_firings=2)],
            seed=3,
        )
        stream, snapshot = _run(
            tmp_path, live_metrics, fault_plan=plan, max_retries=2
        )
        assert counter_value(snapshot, "repro_mce_cliques_emitted_total") == len(stream)
        assert counter_value(snapshot, "repro_parallel_chunk_errors_total") >= 1
        assert counter_value(snapshot, "repro_parallel_chunk_retries_total") >= 1
