"""Shared-memory layer tests: CSR codec, segment lifecycle, stale-segment
sweeping, and the no-leaked-segments regression for killed workers."""

import multiprocessing
import os

import pytest

from repro import DiskGraph, ExtMCEConfig
from repro.errors import GraphError, SharedMemoryError, StorageFormatError
from repro.faults import FaultPlan, FaultRule
from repro.kernel.compact import CompactGraph
from repro.parallel import shm as shm_mod
from repro.parallel.driver import ParallelExtMCE
from repro.parallel.scheduler import ParallelEngine

from tests.helpers import seeded_gnp

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="requires a /dev/shm file view"
)


def _compact() -> CompactGraph:
    return CompactGraph.from_neighbor_lists(
        {0: {1, 2}, 1: {0}, 2: {0, 5}, 5: {2}, 9: set()}
    )


def _same_graph(a: CompactGraph, b: CompactGraph) -> bool:
    return (
        tuple(a.labels) == tuple(b.labels)
        and list(a.indptr) == list(b.indptr)
        and list(a.indices) == list(b.indices)
        and a.masks == b.masks
    )


class TestCodec:
    def test_pack_unpack_roundtrip(self):
        compact = _compact()
        buffer = bytearray(compact.packed_nbytes())
        written = compact.pack_into(buffer, generation=7)
        assert written == compact.packed_nbytes()
        rebuilt = CompactGraph.unpack_from(buffer, generation=7)
        assert _same_graph(compact, rebuilt)

    def test_generation_mismatch_raises(self):
        compact = _compact()
        buffer = bytearray(compact.packed_nbytes())
        compact.pack_into(buffer, generation=7)
        with pytest.raises(SharedMemoryError, match="stale"):
            CompactGraph.unpack_from(buffer, generation=8)
        # generation=None skips the check entirely
        assert _same_graph(compact, CompactGraph.unpack_from(buffer))

    def test_foreign_buffer_raises_format_error(self):
        with pytest.raises(StorageFormatError):
            CompactGraph.unpack_from(bytearray(64))

    def test_truncated_buffer_raises_format_error(self):
        compact = _compact()
        buffer = bytearray(compact.packed_nbytes())
        compact.pack_into(buffer, generation=1)
        with pytest.raises(StorageFormatError):
            CompactGraph.unpack_from(buffer[:-8], generation=1)

    def test_non_integer_labels_are_rejected(self):
        compact = CompactGraph.from_neighbor_lists({"a": {"b"}, "b": {"a"}})
        with pytest.raises(GraphError, match="int64"):
            compact.pack_into(bytearray(compact.packed_nbytes()))


class TestSegments:
    def test_export_attach_roundtrip(self):
        compact = _compact()
        segment = shm_mod.export_star(compact, generation=3)
        try:
            attached, handle = shm_mod.attach_compact(segment.name, 3)
            assert _same_graph(compact, attached)
            del attached  # drop the zero-copy views before closing
            handle.close()
        finally:
            segment.unlink()
        assert not os.path.exists(os.path.join("/dev/shm", segment.name))

    def test_attach_missing_segment_raises(self):
        with pytest.raises(SharedMemoryError, match="attach"):
            shm_mod.attach_compact("repro-shm-0-0-ffffff", 1)

    def test_attach_stale_generation_raises_and_leaves_segment(self):
        segment = shm_mod.export_star(_compact(), generation=2)
        try:
            with pytest.raises(SharedMemoryError, match="stale"):
                shm_mod.attach_compact(segment.name, 9)
            # the failed attach must not have destroyed the segment
            attached, handle = shm_mod.attach_compact(segment.name, 2)
            del attached
            handle.close()
        finally:
            segment.unlink()


class TestEngineLifecycle:
    def test_publish_retires_previous_segment(self):
        star = __import__(
            "repro.core.hstar", fromlist=["extract_hstar_graph"]
        ).extract_hstar_graph(seeded_gnp(30, 0.25, seed=3))
        with ParallelEngine(1) as engine:
            first = engine.publish_star(star, "set")
            assert "shm" in first
            assert os.path.exists(os.path.join("/dev/shm", first["token"]))
            second = engine.publish_star(star, "set")
            assert not os.path.exists(os.path.join("/dev/shm", first["token"]))
            assert os.path.exists(os.path.join("/dev/shm", second["token"]))
        assert not os.path.exists(os.path.join("/dev/shm", second["token"]))

    def test_unpackable_labels_fall_back_to_inband(self):
        from repro.core.hstar import extract_hstar_graph
        from repro.graph.adjacency import AdjacencyGraph

        edges = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("b", "d")]
        star = extract_hstar_graph(AdjacencyGraph.from_edges(edges))
        with ParallelEngine(1) as engine:
            descriptor = engine.publish_star(star, "set")
            assert descriptor["token"].startswith("inband-")
            assert "inband" in descriptor and "shm" not in descriptor
            assert engine.inband_payloads == 1
            assert engine.current_segment is None


class TestSweep:
    def test_dead_creator_segment_is_swept_live_one_kept(self):
        probe = multiprocessing.Process(target=lambda: None)
        probe.start()
        probe.join()
        dead = os.path.join("/dev/shm", f"repro-shm-{probe.pid}-1-abc123")
        live = os.path.join("/dev/shm", f"repro-shm-{os.getpid()}-1-abc123")
        for path in (dead, live):
            with open(path, "wb") as handle:
                handle.write(b"\0" * 8)
        try:
            swept = shm_mod.sweep_stale_segments()
            assert os.path.basename(dead) in swept
            assert not os.path.exists(dead)
            assert os.path.exists(live), "live-owner segments must survive"
        finally:
            for path in (dead, live):
                if os.path.exists(path):
                    os.unlink(path)

    def test_unrelated_names_are_ignored(self):
        decoy = os.path.join("/dev/shm", "repro-shm-not-a-pid")
        with open(decoy, "wb") as handle:
            handle.write(b"\0" * 8)
        try:
            assert os.path.basename(decoy) not in shm_mod.sweep_stale_segments()
            assert os.path.exists(decoy)
        finally:
            os.unlink(decoy)


class TestLeakRegression:
    def test_killed_worker_run_leaks_no_segments(self, tmp_path):
        """A worker SIGKILLed mid-run must not leave repro-shm-* behind."""
        before = {
            entry
            for entry in os.listdir("/dev/shm")
            if entry.startswith(shm_mod.SEGMENT_PREFIX)
        }
        graph = seeded_gnp(50, 0.18, seed=23)
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        plan = FaultPlan([FaultRule("chunk", "worker_kill")])
        config = ExtMCEConfig(
            workdir=tmp_path / "w", workers=2, fault_plan=plan
        )
        algo = ParallelExtMCE(disk, config)
        algo.task_timeout_seconds = 3.0
        cliques = list(algo.enumerate_cliques())
        assert cliques, "faulted run should still enumerate"
        after = {
            entry
            for entry in os.listdir("/dev/shm")
            if entry.startswith(shm_mod.SEGMENT_PREFIX)
        }
        assert after <= before, f"leaked segments: {sorted(after - before)}"
