"""Tests for the clique-set verification service."""

from hypothesis import given, settings

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.graph.adjacency import AdjacencyGraph
from repro.verification import verify_clique_set

from tests.helpers import figure1_graph, small_graphs


def triangle_tail():
    return AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])


class TestPositive:
    def test_correct_set_passes(self):
        g = figure1_graph()
        report = verify_clique_set(g, tomita_maximal_cliques(g))
        assert report.ok
        assert report.sound and report.complete
        assert report.summary().startswith("OK")

    def test_soundness_only_mode(self):
        g = triangle_tail()
        report = verify_clique_set(
            g, [{0, 1, 2}], check_completeness=False
        )
        assert report.sound
        assert not report.completeness_checked
        assert report.ok

    @settings(max_examples=40)
    @given(small_graphs())
    def test_oracle_output_always_verifies(self, g):
        report = verify_clique_set(g, tomita_maximal_cliques(g))
        assert report.ok


class TestFailures:
    def test_duplicate_detected(self):
        g = triangle_tail()
        report = verify_clique_set(
            g, [{0, 1, 2}, {0, 1, 2}, {2, 3}], check_completeness=False
        )
        assert report.duplicates == 1
        assert not report.sound
        assert "1 duplicates" in report.summary()

    def test_non_clique_detected(self):
        g = triangle_tail()
        report = verify_clique_set(g, [{0, 3}], check_completeness=False)
        assert report.not_clique_count == 1
        assert frozenset({0, 3}) in report.not_cliques

    def test_unknown_vertex_counts_as_non_clique(self):
        g = triangle_tail()
        report = verify_clique_set(g, [{0, 99}], check_completeness=False)
        assert report.not_clique_count == 1

    def test_empty_clique_rejected(self):
        g = triangle_tail()
        report = verify_clique_set(g, [set()], check_completeness=False)
        assert report.not_clique_count == 1

    def test_non_maximal_detected(self):
        g = triangle_tail()
        report = verify_clique_set(g, [{0, 1}], check_completeness=False)
        assert report.not_maximal_count == 1

    def test_missing_detected(self):
        g = triangle_tail()
        report = verify_clique_set(g, [{0, 1, 2}])
        assert report.missing_count == 1
        assert frozenset({2, 3}) in report.missing
        assert not report.complete
        assert "1 missing" in report.summary()

    def test_max_reported_caps_lists_not_counts(self):
        g = AdjacencyGraph.from_edges([(i, i + 1) for i in range(40)])
        bogus = [{i, i + 2} for i in range(30)]  # 30 non-cliques
        report = verify_clique_set(
            g, bogus, check_completeness=False, max_reported=5
        )
        assert report.not_clique_count == 30
        assert len(report.not_cliques) == 5


class TestEndToEnd:
    def test_extmce_output_verifies(self, tmp_path):
        from repro.core.extmce import ExtMCE, ExtMCEConfig
        from repro.storage.diskgraph import DiskGraph
        from tests.helpers import seeded_gnp

        g = seeded_gnp(50, 0.2, seed=11)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w"))
        report = verify_clique_set(g, algo.enumerate_cliques())
        assert report.ok, report.summary()
