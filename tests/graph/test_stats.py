"""Tests for BFS-based statistics (closeness, reachability)."""

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.stats import (
    average_closeness,
    bfs_distances,
    closeness,
    degree_histogram,
    reachability_fraction,
)


def path_graph(n):
    return AdjacencyGraph.from_edges([(i, i + 1) for i in range(n - 1)])


class TestBfs:
    def test_distances_on_path(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_ignore_unreachable(self):
        g = AdjacencyGraph.from_edges([(0, 1), (2, 3)])
        assert set(bfs_distances(g, 0)) == {0, 1}


class TestCloseness:
    def test_path_endpoint(self):
        g = path_graph(5)
        assert closeness(g, 0) == (1 + 2 + 3 + 4) / 4

    def test_isolated_vertex_is_zero(self):
        g = AdjacencyGraph.from_edges([], vertices=[0])
        assert closeness(g, 0) == 0.0

    def test_star_center(self):
        g = AdjacencyGraph.from_edges([(0, i) for i in range(1, 6)])
        assert closeness(g, 0) == 1.0

    def test_average_closeness(self):
        g = path_graph(3)
        # vertices 0 and 2: (1+2)/2 = 1.5; vertex 1: 1.0
        assert average_closeness(g, [0, 1, 2]) == (1.5 + 1.0 + 1.5) / 3

    def test_average_closeness_empty_set(self):
        assert average_closeness(path_graph(3), []) == 0.0

    def test_average_closeness_sampling_is_deterministic(self):
        g = path_graph(20)
        a = average_closeness(g, range(20), sample_size=5, seed=3)
        b = average_closeness(g, range(20), sample_size=5, seed=3)
        assert a == b


class TestReachability:
    def test_full_reachability_from_any_vertex_of_connected_graph(self):
        g = path_graph(6)
        assert reachability_fraction(g, [3]) == 1.0

    def test_partial_reachability(self):
        g = AdjacencyGraph.from_edges([(0, 1), (2, 3)])
        assert reachability_fraction(g, [0]) == 0.5

    def test_sources_count_as_reached(self):
        g = AdjacencyGraph.from_edges([], vertices=[0, 1])
        assert reachability_fraction(g, [0]) == 0.5

    def test_empty_graph(self):
        assert reachability_fraction(AdjacencyGraph(), []) == 0.0


class TestDegreeHistogram:
    def test_star(self):
        g = AdjacencyGraph.from_edges([(0, i) for i in range(1, 5)])
        assert degree_histogram(g) == {4: 1, 1: 4}

    def test_includes_isolated(self):
        g = AdjacencyGraph.from_edges([], vertices=[0, 1])
        assert degree_histogram(g) == {0: 2}


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        from repro.graph.stats import average_clustering, local_clustering

        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert local_clustering(g, 0) == 1.0
        assert average_clustering(g) == 1.0

    def test_star_has_zero_clustering(self):
        from repro.graph.stats import average_clustering

        g = AdjacencyGraph.from_edges([(0, i) for i in range(1, 5)])
        assert average_clustering(g) == 0.0

    def test_low_degree_vertices_contribute_zero(self):
        from repro.graph.stats import local_clustering

        g = AdjacencyGraph.from_edges([(0, 1)])
        assert local_clustering(g, 0) == 0.0

    def test_paw_graph(self):
        from repro.graph.stats import local_clustering

        # Triangle 0-1-2 plus pendant 3 on 0.
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (0, 3)])
        assert local_clustering(g, 0) == 1 / 3
        assert local_clustering(g, 1) == 1.0

    def test_sampling_deterministic(self):
        from repro.graph.stats import average_clustering
        from tests.helpers import seeded_gnp

        g = seeded_gnp(30, 0.3, seed=2)
        a = average_clustering(g, sample_size=10, seed=1)
        assert a == average_clustering(g, sample_size=10, seed=1)

    def test_empty_graph(self):
        from repro.graph.stats import average_clustering

        assert average_clustering(AdjacencyGraph()) == 0.0

    def test_holme_kim_triad_formation_raises_clustering(self):
        from repro.graph.stats import average_clustering
        from repro.generators.scale_free import powerlaw_cluster_graph

        low = average_clustering(powerlaw_cluster_graph(300, 3, 0.0, seed=1))
        high = average_clustering(powerlaw_cluster_graph(300, 3, 0.9, seed=1))
        assert high > low + 0.05
