"""Unit tests for the core adjacency-set graph."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph.adjacency import AdjacencyGraph

from tests.helpers import small_graphs


class TestConstruction:
    def test_empty_graph(self):
        g = AdjacencyGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = AdjacencyGraph.from_edges([(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_edges_with_isolated_vertices(self):
        g = AdjacencyGraph.from_edges([(1, 2)], vertices=[5, 6])
        assert g.num_vertices == 4
        assert g.degree(5) == 0

    def test_from_edges_deduplicates(self):
        g = AdjacencyGraph.from_edges([(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_from_adjacency_symmetrises(self):
        g = AdjacencyGraph.from_adjacency({1: [2, 3], 2: []})
        assert g.has_edge(2, 1)
        assert g.has_edge(3, 1)
        assert g.num_edges == 2

    def test_copy_is_independent(self):
        g = AdjacencyGraph.from_edges([(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_edges == 1
        assert clone.num_edges == 2


class TestMutation:
    def test_add_edge_returns_true_when_new(self):
        g = AdjacencyGraph()
        assert g.add_edge(1, 2) is True
        assert g.add_edge(1, 2) is False

    def test_self_loop_rejected(self):
        g = AdjacencyGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_add_vertex_idempotent(self):
        g = AdjacencyGraph()
        g.add_vertex(1)
        g.add_vertex(1)
        assert g.num_vertices == 1

    def test_remove_edge(self):
        g = AdjacencyGraph.from_edges([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        assert 1 in g  # vertex survives

    def test_remove_missing_edge_raises(self):
        g = AdjacencyGraph.from_edges([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)

    def test_remove_vertex_removes_incident_edges(self):
        g = AdjacencyGraph.from_edges([(1, 2), (1, 3), (2, 3)])
        g.remove_vertex(1)
        assert g.num_edges == 1
        assert 1 not in g

    def test_remove_missing_vertex_raises(self):
        g = AdjacencyGraph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(7)


class TestQueries:
    def test_neighbors_and_degree(self):
        g = AdjacencyGraph.from_edges([(1, 2), (1, 3)])
        assert g.neighbors(1) == {2, 3}
        assert g.degree(1) == 2
        assert g.degree(2) == 1

    def test_neighbors_missing_vertex_raises(self):
        g = AdjacencyGraph()
        with pytest.raises(VertexNotFoundError):
            g.neighbors(0)

    def test_edges_each_once(self):
        g = AdjacencyGraph.from_edges([(1, 2), (2, 3), (1, 3)])
        edges = list(g.edges())
        assert len(edges) == 3
        assert {tuple(sorted(e)) for e in edges} == {(1, 2), (2, 3), (1, 3)}

    def test_degree_sequence_descending(self):
        g = AdjacencyGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree_sequence() == [3, 1, 1, 1]

    def test_len_and_contains_and_iter(self):
        g = AdjacencyGraph.from_edges([(1, 2)])
        assert len(g) == 2
        assert 1 in g and 3 not in g
        assert sorted(g) == [1, 2]

    def test_repr_mentions_sizes(self):
        g = AdjacencyGraph.from_edges([(1, 2)])
        assert "num_vertices=2" in repr(g)
        assert "num_edges=1" in repr(g)


class TestSubgraphsAndCliques:
    def test_induced_subgraph(self):
        g = AdjacencyGraph.from_edges([(1, 2), (2, 3), (1, 3), (3, 4)])
        sub = g.induced_subgraph({1, 2, 3})
        assert sub.num_vertices == 3
        assert sub.num_edges == 3
        assert 4 not in sub

    def test_induced_subgraph_ignores_unknown_vertices(self):
        g = AdjacencyGraph.from_edges([(1, 2)])
        sub = g.induced_subgraph({1, 99})
        assert sub.num_vertices == 1

    def test_induced_subgraph_keeps_isolated_members(self):
        g = AdjacencyGraph.from_edges([(1, 2), (3, 4)])
        sub = g.induced_subgraph({1, 3})
        assert sub.num_vertices == 2
        assert sub.num_edges == 0

    def test_is_clique(self):
        g = AdjacencyGraph.from_edges([(1, 2), (2, 3), (1, 3), (3, 4)])
        assert g.is_clique({1, 2, 3})
        assert not g.is_clique({1, 2, 4})
        assert g.is_clique({1})
        assert g.is_clique([])

    def test_is_clique_unknown_vertex_raises(self):
        g = AdjacencyGraph.from_edges([(1, 2)])
        with pytest.raises(VertexNotFoundError):
            g.is_clique({1, 9})

    def test_is_maximal_clique(self):
        g = AdjacencyGraph.from_edges([(1, 2), (2, 3), (1, 3), (3, 4)])
        assert g.is_maximal_clique({1, 2, 3})
        assert not g.is_maximal_clique({1, 2})
        assert not g.is_maximal_clique(set())

    def test_common_neighbors(self):
        g = AdjacencyGraph.from_edges([(1, 3), (2, 3), (1, 4), (2, 4), (3, 4)])
        assert g.common_neighbors({1, 2}) == {3, 4}
        assert g.common_neighbors({3, 4}) == {1, 2}

    def test_common_neighbors_of_empty_set_is_universe(self):
        g = AdjacencyGraph.from_edges([(1, 2)])
        assert g.common_neighbors(set()) == {1, 2}


class TestProperties:
    @given(small_graphs())
    def test_handshake_lemma(self, g):
        assert sum(g.degree(v) for v in g) == 2 * g.num_edges

    @given(small_graphs())
    def test_edges_iteration_matches_edge_count(self, g):
        assert len(list(g.edges())) == g.num_edges

    @given(small_graphs())
    def test_neighbors_symmetric(self, g):
        for v in g:
            for u in g.neighbors(v):
                assert v in g.neighbors(u)

    @given(small_graphs(), st.integers(0, 13))
    def test_induced_subgraph_edges_subset(self, g, k):
        subset = [v for v in g if v <= k]
        sub = g.induced_subgraph(subset)
        for u, v in sub.edges():
            assert g.has_edge(u, v)
