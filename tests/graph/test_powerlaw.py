"""Tests for the rank-exponent fit and the Section 3.2 size bounds."""

import math

import pytest

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.powerlaw import (
    fit_rank_exponent,
    predicted_h,
    predicted_hstar_size_bounds,
)
from repro.generators import powerlaw_cluster_graph


class TestFit:
    def test_exact_power_law_recovers_exponent(self):
        # Build a graph-like degree sequence d(r) = (r/n)^R exactly by
        # synthesising stars; easier: verify on a synthetic fit input via
        # a graph whose degree sequence is constructed directly.
        n = 64
        g = AdjacencyGraph()
        # hub-and-spoke layers give a strictly decreasing degree sequence
        hub_degrees = [40, 20, 13, 10, 8, 6]
        next_leaf = 100
        for hub, d in enumerate(hub_degrees):
            for _ in range(d):
                g.add_edge(hub, next_leaf)
                next_leaf += 1
        fit = fit_rank_exponent(g, min_degree=2)
        assert fit.rank_exponent < 0
        assert fit.r_squared > 0.95

    def test_scale_free_graph_fits_negative_exponent(self):
        g = powerlaw_cluster_graph(600, 3, 0.5, seed=2)
        fit = fit_rank_exponent(g)
        assert fit.rank_exponent < 0
        assert 0 < fit.r_squared <= 1

    def test_too_small_graph_raises(self):
        g = AdjacencyGraph.from_edges([], vertices=[0])
        with pytest.raises(GraphError):
            fit_rank_exponent(g)

    def test_uniform_degrees_fit_zero_slope(self):
        g = AdjacencyGraph.from_edges([(0, 1), (2, 3), (4, 5)])
        fit = fit_rank_exponent(g)
        assert fit.rank_exponent == pytest.approx(0.0)


class TestPredictedH:
    def test_paper_worked_example(self):
        # Section 3.2: n = 1e6, R = -0.8 gives h <= 464.
        assert predicted_h(1_000_000, -0.8) == 464

    def test_paper_second_example(self):
        # R = -0.7 gives "about 300".
        assert 280 <= predicted_h(1_000_000, -0.7) <= 320

    def test_monotone_in_n(self):
        assert predicted_h(10_000_000, -0.7) > predicted_h(1_000_000, -0.7)

    def test_zero_vertices(self):
        assert predicted_h(0, -0.7) == 0

    def test_nonnegative_exponent_rejected(self):
        with pytest.raises(GraphError):
            predicted_h(1000, 0.5)


class TestSizeBounds:
    def test_fraction_range_matches_paper(self):
        # Paper: n = 1e6, R = -0.7 -> |G_H*| within 12-15% of |G|.
        bounds = predicted_hstar_size_bounds(1_000_000, -0.7)
        assert 0.10 <= bounds.lower_fraction <= bounds.upper_fraction <= 0.17

    def test_fraction_shrinks_with_network_growth(self):
        # Paper: the ratio drops to 8-10% at n = 1e7.
        small = predicted_hstar_size_bounds(1_000_000, -0.7)
        large = predicted_hstar_size_bounds(10_000_000, -0.7)
        assert large.upper_fraction < small.upper_fraction

    def test_lower_bound_below_upper(self):
        bounds = predicted_hstar_size_bounds(100_000, -0.75)
        assert 0 <= bounds.lower_edges <= bounds.upper_edges

    def test_upper_edges_is_degree_sum_of_head(self):
        bounds = predicted_hstar_size_bounds(10_000, -0.8)
        expected = sum(
            (r / 10_000) ** -0.8 for r in range(1, bounds.h + 1)
        )
        assert bounds.upper_edges == pytest.approx(expected)

    def test_no_nan_for_typical_exponents(self):
        for exponent in (-0.5, -0.7, -0.9, -1.1):
            bounds = predicted_hstar_size_bounds(500_000, exponent)
            assert math.isfinite(bounds.upper_fraction)
