"""Tests for k-core decomposition."""

from hypothesis import given, settings

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.cores import core_numbers, degeneracy, k_core
from repro.graph.ordering import degeneracy_ordering

from tests.helpers import seeded_gnp, small_graphs


def complete_graph(n):
    return AdjacencyGraph.from_edges([(u, v) for u in range(n) for v in range(u + 1, n)])


class TestCoreNumbers:
    def test_clique(self):
        numbers = core_numbers(complete_graph(5))
        assert all(c == 4 for c in numbers.values())

    def test_tree_is_one_core(self):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (1, 3), (3, 4)])
        assert set(core_numbers(g).values()) == {1}

    def test_isolated_vertices_are_zero_core(self):
        g = AdjacencyGraph.from_edges([(0, 1)], vertices=[5])
        assert core_numbers(g)[5] == 0

    def test_clique_with_pendant(self):
        g = complete_graph(4)
        g.add_edge(0, 9)
        numbers = core_numbers(g)
        assert numbers[9] == 1
        assert numbers[0] == 3

    def test_empty_graph(self):
        assert core_numbers(AdjacencyGraph()) == {}

    @settings(max_examples=50)
    @given(small_graphs())
    def test_definition_invariant(self, g):
        """Within the k-core, every vertex has >= k neighbors in it."""
        numbers = core_numbers(g)
        for k in set(numbers.values()):
            members = {v for v, c in numbers.items() if c >= k}
            for v in members:
                assert len(g.neighbors(v) & members) >= k

    @settings(max_examples=50)
    @given(small_graphs())
    def test_maximality_invariant(self, g):
        """No vertex could have a higher core number."""
        numbers = core_numbers(g)
        for v, c in numbers.items():
            higher = {u for u, cu in numbers.items() if cu >= c + 1} | {v}
            # v is excluded from the (c+1)-core: within higher it has
            # fewer than c+1 neighbors OR pulling it in would not create
            # a valid (c+1)-core (checked via the peeling invariant).
            sub = g.induced_subgraph(higher)
            # peel: if v survived peeling at c+1 it would have core >= c+1
            changed = True
            members = set(higher)
            while changed:
                changed = False
                for u in list(members):
                    if len(g.neighbors(u) & members) < c + 1:
                        members.discard(u)
                        changed = True
            assert v not in members


class TestDerived:
    def test_k_core_subgraph(self):
        g = complete_graph(4)
        g.add_edge(0, 9)
        sub = k_core(g, 3)
        assert set(sub.vertices()) == {0, 1, 2, 3}

    def test_degeneracy_matches_ordering_module(self):
        for seed in range(5):
            g = seeded_gnp(40, 0.2, seed=seed)
            _, expected = degeneracy_ordering(g)
            assert degeneracy(g) == expected

    @settings(max_examples=40)
    @given(small_graphs())
    def test_degeneracy_agreement_property(self, g):
        _, expected = degeneracy_ordering(g)
        assert degeneracy(g) == expected
