"""Tests for vertex orderings (degree, ≺, degeneracy)."""

import pytest

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.ordering import degeneracy_ordering, degree_ordering, hstar_vertex_order

from tests.helpers import seeded_gnp


class TestDegreeOrdering:
    def test_descending_default(self):
        g = AdjacencyGraph.from_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
        order = degree_ordering(g)
        assert order[0] == 2  # degree 3

    def test_ascending(self):
        g = AdjacencyGraph.from_edges([(0, 1), (0, 2)])
        assert degree_ordering(g, descending=False)[0] in (1, 2)

    def test_ties_broken_by_id(self):
        g = AdjacencyGraph.from_edges([(0, 1), (2, 3)])
        assert degree_ordering(g) == [0, 1, 2, 3]


class TestHStarOrder:
    def test_core_before_periphery(self):
        rank = hstar_vertex_order([5, 3], [1, 2])
        assert rank[3] < rank[5] < rank[1] < rank[2]

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            hstar_vertex_order([1, 2], [2, 3])

    def test_empty_inputs(self):
        assert hstar_vertex_order([], []) == {}


class TestDegeneracyOrdering:
    def test_tree_has_degeneracy_one(self):
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (1, 3)])
        _, degeneracy = degeneracy_ordering(g)
        assert degeneracy == 1

    def test_clique_degeneracy(self):
        g = AdjacencyGraph.from_edges(
            [(u, v) for u in range(5) for v in range(u + 1, 5)]
        )
        _, degeneracy = degeneracy_ordering(g)
        assert degeneracy == 4

    def test_ordering_covers_all_vertices(self):
        g = seeded_gnp(30, 0.2, seed=4)
        order, _ = degeneracy_ordering(g)
        assert sorted(order) == sorted(g.vertices())

    def test_isolated_vertices_first(self):
        g = AdjacencyGraph.from_edges([(0, 1), (0, 2), (1, 2)], vertices=[9])
        order, degeneracy = degeneracy_ordering(g)
        assert order[0] == 9
        assert degeneracy == 2

    def test_degeneracy_invariant(self):
        # Each vertex has at most `degeneracy` later neighbors in the order.
        g = seeded_gnp(40, 0.25, seed=11)
        order, degeneracy = degeneracy_ordering(g)
        position = {v: i for i, v in enumerate(order)}
        for v in order:
            later = sum(1 for u in g.neighbors(v) if position[u] > position[v])
            assert later <= degeneracy

    def test_empty_graph(self):
        order, degeneracy = degeneracy_ordering(AdjacencyGraph())
        assert order == []
        assert degeneracy == 0
