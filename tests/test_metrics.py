"""Unit tests for the repro.metrics registry, snapshots and rendering."""

from __future__ import annotations

import json

import pytest

from repro import metrics
from repro.metrics import (
    SNAPSHOT_SCHEMA,
    TIME_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    counter_value,
    merge_snapshots,
    metric_names,
    render_metrics_table,
    render_prometheus,
    write_exposition_files,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_identity_per_label_set(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", labels={"k": "a"})
        b = registry.counter("c_total", labels={"k": "b"})
        again = registry.counter("c_total", labels={"k": "a"})
        assert a is again
        assert a is not b

    def test_gauge_tracks_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(7)
        gauge.inc(3)
        gauge.dec(8)
        assert gauge.value == 2
        assert gauge.high_water == 10

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1, 10, 100))
        for value in (0, 1, 5, 100, 1000):
            hist.observe(value)
        # counts: <=1, <=10, <=100, overflow
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == 1106
        assert hist.mean == pytest.approx(1106 / 5)

    def test_timer_observes_into_time_histogram(self):
        registry = MetricsRegistry()
        with registry.timer("t_seconds"):
            pass
        hist = registry.histogram("t_seconds", buckets=TIME_BUCKETS)
        assert hist.count == 1
        assert hist.sum >= 0

    def test_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1, 2, 3))


class TestNullRegistry:
    def test_shared_noop_instruments(self):
        null = NullRegistry()
        assert null.counter("a") is null.counter("b")
        null.counter("a").inc(10)
        assert null.counter("a").value == 0
        with null.timer("t"):
            pass

    def test_disabled_by_default_and_toggling(self):
        assert not metrics.enabled()
        registry = metrics.enable()
        try:
            assert metrics.enabled()
            assert metrics.enable() is registry  # idempotent
        finally:
            metrics.disable()
        assert not metrics.enabled()

    def test_bound_rebinds_on_registry_change(self):
        accessor = metrics.bound(lambda r: r.counter("rebind_total"))
        assert accessor() is accessor()  # cached against the null registry
        accessor().inc()
        registry = MetricsRegistry()
        metrics.set_registry(registry)
        try:
            live = accessor()
            live.inc(2)
            assert registry.counter("rebind_total").value == 2
        finally:
            metrics.disable()
        assert accessor().value == 0  # back on the shared no-op


class TestSnapshots:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter", labels={"k": "b"}).inc(3)
        registry.counter("c_total", "a counter", labels={"k": "a"}).inc(2)
        registry.gauge("g", "a gauge").set(5)
        registry.histogram("h", "a histogram", buckets=(1, 10)).observe(4)
        return registry

    def test_snapshot_sorted_and_schema_tagged(self):
        snapshot = self._populated().snapshot()
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        keys = [(e["name"], tuple(sorted(e["labels"].items())))
                for e in snapshot["metrics"]]
        assert keys == sorted(keys)

    def test_snapshot_json_roundtrip_is_stable(self):
        snapshot = self._populated().snapshot()
        encoded = json.dumps(snapshot, sort_keys=True)
        assert json.dumps(json.loads(encoded), sort_keys=True) == encoded

    def test_absorb_into_empty_reproduces(self):
        snapshot = self._populated().snapshot()
        other = MetricsRegistry()
        other.absorb(snapshot)
        assert other.snapshot() == snapshot

    def test_merge_sums_counters_and_histograms_maxes_gauges(self):
        first = self._populated().snapshot()
        second = self._populated().snapshot()
        merged = merge_snapshots([first, second])
        assert counter_value(merged, "c_total") == 10
        gauge = next(e for e in merged["metrics"] if e["name"] == "g")
        assert gauge["value"] == 5  # max, not sum
        hist = next(e for e in merged["metrics"] if e["name"] == "h")
        assert hist["count"] == 2
        assert hist["sum"] == 8

    def test_absorb_rejects_foreign_payloads(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.absorb({"metrics": []})
        with pytest.raises(ValueError):
            registry.absorb({"schema": "other/9", "metrics": []})

    def test_dump_load_and_exposition_files(self, tmp_path):
        snapshot = self._populated().snapshot()
        json_path, prom_path = write_exposition_files(
            snapshot, tmp_path / "m.json"
        )
        assert metrics.load_snapshot(json_path) == snapshot
        assert prom_path.read_text() == render_prometheus(snapshot)
        assert not list(tmp_path.glob("*.tmp"))

    def test_metric_names_and_counter_value(self):
        snapshot = self._populated().snapshot()
        assert metric_names(snapshot) == {"c_total", "g", "h"}
        assert counter_value(snapshot, "c_total") == 5
        assert counter_value(snapshot, "absent_total") == 0


class TestRendering:
    def test_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counts things", labels={"k": "v"}).inc(2)
        registry.histogram("h", "sizes", buckets=(1, 2)).observe(2)
        text = render_prometheus(registry.snapshot())
        assert "# HELP c_total counts things" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{k="v"} 2' in text
        # Cumulative buckets plus the +Inf terminator, sum and count.
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="2"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 2" in text
        assert "h_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"p": 'a"b\\c'}).inc()
        text = render_prometheus(registry.snapshot())
        assert 'c_total{p="a\\"b\\\\c"} 1' in text

    def test_table_mentions_every_series(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(9)
        registry.gauge("g").set(4)
        registry.histogram("h").observe(1)
        table = render_metrics_table(registry.snapshot())
        for needle in ("c_total", "g", "h", "9", "high water"):
            assert needle in table
