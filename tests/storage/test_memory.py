"""Tests for the explicit memory-accounting model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryBudgetExceeded
from repro.storage.memory import BYTES_PER_UNIT, MemoryModel


class TestAllocateRelease:
    def test_peak_tracks_high_water_mark(self):
        model = MemoryModel()
        model.allocate(10)
        model.release(4)
        model.allocate(2)
        assert model.in_use_units == 8
        assert model.peak_units == 10

    def test_budget_enforced(self):
        model = MemoryModel(budget=5)
        model.allocate(5)
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            model.allocate(1)
        assert excinfo.value.budget == 5
        assert excinfo.value.in_use == 5

    def test_no_budget_means_unbounded(self):
        model = MemoryModel()
        model.allocate(10**9)
        assert model.available_units is None

    def test_negative_allocate_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel().allocate(-1)

    def test_over_release_rejected(self):
        model = MemoryModel()
        model.allocate(3)
        with pytest.raises(ValueError):
            model.release(4)

    def test_release_wrong_label_rejected(self):
        model = MemoryModel()
        model.allocate(3, label="a")
        with pytest.raises(ValueError):
            model.release(3, label="b")

    def test_labels_tracked_independently(self):
        model = MemoryModel()
        model.allocate(3, label="tree")
        model.allocate(4, label="star")
        model.release(2, label="tree")
        assert model.by_label["tree"] == 1
        assert model.by_label["star"] == 4

    def test_available_units(self):
        model = MemoryModel(budget=10)
        model.allocate(4)
        assert model.available_units == 6


class TestContextManager:
    def test_allocation_pairs_with_release(self):
        model = MemoryModel()
        with model.allocation(7):
            assert model.in_use_units == 7
        assert model.in_use_units == 0
        assert model.peak_units == 7

    def test_allocation_releases_on_exception(self):
        model = MemoryModel()
        with pytest.raises(RuntimeError):
            with model.allocation(7):
                raise RuntimeError("boom")
        assert model.in_use_units == 0


class TestReporting:
    def test_peak_bytes_and_megabytes(self):
        model = MemoryModel()
        model.allocate(1024 * 1024 // BYTES_PER_UNIT)
        assert model.peak_bytes == 1024 * 1024
        assert model.peak_megabytes == pytest.approx(1.0)

    def test_reset_peak(self):
        model = MemoryModel()
        model.allocate(10)
        model.release(10)
        model.reset_peak()
        assert model.peak_units == 0

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=30))
    def test_peak_never_below_in_use(self, amounts):
        model = MemoryModel()
        held = 0
        for amount in amounts:
            model.allocate(amount)
            held += amount
            assert model.peak_units >= model.in_use_units
        assert model.in_use_units == held
