"""Storage-layer metrics: page I/O, buffer-pool, checksum counters."""

from __future__ import annotations

import pytest

from repro.errors import CorruptDataError
from repro.graph.adjacency import AdjacencyGraph
from repro.metrics import counter_value
from repro.storage.bufferpool import BufferPool
from repro.storage.diskgraph import DiskGraph
from repro.storage.format import decode_record, encode_record
from repro.storage.iostats import IOStats
from repro.storage.pagestore import PAGE_SIZE_BYTES, PageStore


@pytest.fixture
def store(tmp_path):
    s = PageStore(tmp_path / "data.bin", IOStats())
    s.write_all(bytes(range(256)) * (4 * PAGE_SIZE_BYTES // 256))
    return s


class TestPageCounters:
    def test_disabled_registry_records_nothing(self, store):
        # No live registry installed: IOStats still counts, metrics don't
        # exist to count into — this is the near-free default path.
        store.read_at(0, 64)
        assert store.io_stats.pages_read >= 1

    def test_reads_writes_and_bytes(self, live_metrics, store):
        store.read_at(0, 64)
        store.append(b"x" * 100)
        snapshot = live_metrics.snapshot()
        assert counter_value(snapshot, "repro_storage_pages_read_total") >= 1
        assert counter_value(snapshot, "repro_storage_pages_written_total") >= 1
        assert counter_value(snapshot, "repro_storage_bytes_read_total") >= 64
        assert counter_value(snapshot, "repro_storage_bytes_written_total") >= 100

    def test_counters_track_iostats(self, live_metrics, store):
        for offset in (0, PAGE_SIZE_BYTES, 2 * PAGE_SIZE_BYTES):
            store.read_at(offset, 32)
        snapshot = live_metrics.snapshot()
        assert (
            counter_value(snapshot, "repro_storage_pages_read_total")
            == store.io_stats.pages_read
        )


class TestBufferPoolCounters:
    def test_hits_misses_evictions_resident(self, live_metrics, store):
        pool = BufferPool(store, capacity_pages=2)
        pool.read(0, 16)                      # miss
        pool.read(0, 16)                      # hit
        pool.read(PAGE_SIZE_BYTES, 16)        # miss
        pool.read(2 * PAGE_SIZE_BYTES, 16)    # miss + eviction
        snapshot = live_metrics.snapshot()
        assert counter_value(snapshot, "repro_bufferpool_hits_total") == pool.hits
        assert counter_value(snapshot, "repro_bufferpool_misses_total") == pool.misses
        assert counter_value(snapshot, "repro_bufferpool_evictions_total") >= 1
        gauge = next(
            e for e in snapshot["metrics"]
            if e["name"] == "repro_bufferpool_resident_pages"
        )
        assert gauge["value"] == pool.resident_pages
        assert gauge["high_water"] >= gauge["value"]


class TestChecksumCounters:
    def test_verified_and_failure_counts(self, live_metrics):
        good = encode_record(1, [2, 4, 5], 3, checksum=True)
        decode_record(good, checksum=True, verify=True)
        corrupt = bytearray(good)
        corrupt[-1] ^= 0xFF
        with pytest.raises(CorruptDataError):
            decode_record(bytes(corrupt), checksum=True, verify=True)
        snapshot = live_metrics.snapshot()
        assert counter_value(snapshot, "repro_storage_records_verified_total") == 2
        assert counter_value(snapshot, "repro_storage_checksum_failures_total") == 1

    def test_full_graph_scan_verifies_every_record(self, live_metrics, tmp_path):
        graph = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        disk = DiskGraph.create(tmp_path / "g.bin", graph, verify_checksums=True)
        list(disk.scan())
        snapshot = live_metrics.snapshot()
        assert (
            counter_value(snapshot, "repro_storage_records_verified_total")
            >= graph.num_vertices
        )
        assert counter_value(snapshot, "repro_storage_checksum_failures_total") == 0
