"""Tests for the buffer pool and its replacement policies."""

import pytest

from repro.errors import StorageError
from repro.storage.bufferpool import UNITS_PER_PAGE, BufferPool
from repro.storage.iostats import IOStats
from repro.storage.memory import MemoryModel
from repro.storage.pagestore import PAGE_SIZE_BYTES, PageStore


@pytest.fixture
def store(tmp_path):
    s = PageStore(tmp_path / "data.bin", IOStats())
    payload = bytes(range(256)) * (5 * PAGE_SIZE_BYTES // 256)
    s.write_all(payload)
    s.io_stats.pages_written = 0
    return s


class TestBasics:
    def test_read_returns_correct_bytes(self, store):
        pool = BufferPool(store, capacity_pages=2)
        direct = store.read_at(100, 64)
        assert pool.read(100, 64) == direct

    def test_read_spanning_pages(self, store):
        pool = BufferPool(store, capacity_pages=4)
        offset = PAGE_SIZE_BYTES - 16
        assert pool.read(offset, 32) == store.read_at(offset, 32)

    def test_hit_avoids_io(self, store):
        pool = BufferPool(store, capacity_pages=2)
        pool.read(0, 8)
        seeks_before = store.io_stats.random_reads
        pool.read(4, 8)  # same page
        assert store.io_stats.random_reads == seeks_before
        assert pool.hits == 1

    def test_miss_costs_a_seek(self, store):
        pool = BufferPool(store, capacity_pages=2)
        pool.read(0, 8)
        pool.read(2 * PAGE_SIZE_BYTES, 8)
        assert store.io_stats.random_reads == 2
        assert pool.misses == 2

    def test_capacity_enforced(self, store):
        pool = BufferPool(store, capacity_pages=2)
        for page in range(4):
            pool.read(page * PAGE_SIZE_BYTES, 8)
        assert pool.resident_pages == 2

    def test_zero_length_read(self, store):
        pool = BufferPool(store, capacity_pages=1)
        assert pool.read(0, 0) == b""
        assert pool.misses == 0

    def test_read_past_end_raises(self, store):
        pool = BufferPool(store, capacity_pages=1)
        with pytest.raises(StorageError):
            pool.read(store.size_bytes() + PAGE_SIZE_BYTES, 8)

    def test_invalid_configuration(self, store):
        with pytest.raises(StorageError):
            BufferPool(store, capacity_pages=0)
        with pytest.raises(StorageError):
            BufferPool(store, capacity_pages=1, policy="mru")


class TestPolicies:
    def _workload(self, pool):
        # pages: 0 1 0 2 0 3 0 4 ... page 0 stays hot
        for page in range(1, 5):
            pool.read(0, 8)
            pool.read(page * PAGE_SIZE_BYTES, 8)
        pool.read(0, 8)
        return pool

    def test_lru_keeps_hot_page(self, store):
        pool = self._workload(BufferPool(store, capacity_pages=2, policy="lru"))
        # The final read of page 0 is a hit under LRU.
        assert pool.hit_rate > 0.4

    def test_fifo_evicts_hot_page(self, store):
        pool = self._workload(BufferPool(store, capacity_pages=2, policy="fifo"))
        lru = self._workload(BufferPool(store, capacity_pages=2, policy="lru"))
        assert pool.hits <= lru.hits

    def test_clock_behaves_like_lru_approximation(self, store):
        pool = self._workload(BufferPool(store, capacity_pages=2, policy="clock"))
        assert pool.hits >= 1
        assert pool.resident_pages <= 2

    def test_all_policies_return_same_data(self, store):
        reads = [(0, 16), (PAGE_SIZE_BYTES + 7, 32), (3 * PAGE_SIZE_BYTES, 8), (5, 9)]
        results = []
        for policy in ("lru", "fifo", "clock"):
            pool = BufferPool(store, capacity_pages=2, policy=policy)
            results.append([pool.read(o, n) for o, n in reads])
        assert results[0] == results[1] == results[2]


class TestMemoryCharging:
    def test_pages_charged_and_released(self, store):
        memory = MemoryModel()
        pool = BufferPool(store, capacity_pages=3, memory=memory)
        pool.read(0, 8)
        pool.read(PAGE_SIZE_BYTES, 8)
        assert memory.in_use_units == 2 * UNITS_PER_PAGE
        pool.drop()
        assert memory.in_use_units == 0

    def test_eviction_releases(self, store):
        memory = MemoryModel()
        pool = BufferPool(store, capacity_pages=1, memory=memory)
        for page in range(3):
            pool.read(page * PAGE_SIZE_BYTES, 8)
        assert memory.in_use_units == UNITS_PER_PAGE


class TestLRUEvictionOrder:
    def _resident(self, pool):
        return set(pool._pages)

    def test_victim_is_least_recently_used(self, store):
        pool = BufferPool(store, capacity_pages=3, policy="lru")
        for page in (0, 1, 2):
            pool.read(page * PAGE_SIZE_BYTES, 8)
        pool.read(0, 8)  # refresh page 0; page 1 is now the LRU victim
        pool.read(3 * PAGE_SIZE_BYTES, 8)
        assert self._resident(pool) == {0, 2, 3}

    def test_hit_refresh_changes_successive_victims(self, store):
        pool = BufferPool(store, capacity_pages=2, policy="lru")
        pool.read(0, 8)
        pool.read(PAGE_SIZE_BYTES, 8)
        pool.read(0, 8)  # page 1 becomes LRU
        pool.read(2 * PAGE_SIZE_BYTES, 8)  # evicts 1
        assert self._resident(pool) == {0, 2}
        pool.read(3 * PAGE_SIZE_BYTES, 8)  # evicts 0 (2 was just used)
        assert self._resident(pool) == {2, 3}

    def test_fifo_ignores_recency(self, store):
        pool = BufferPool(store, capacity_pages=3, policy="fifo")
        for page in (0, 1, 2):
            pool.read(page * PAGE_SIZE_BYTES, 8)
        pool.read(0, 8)  # a hit must NOT save page 0 under FIFO
        pool.read(3 * PAGE_SIZE_BYTES, 8)
        assert self._resident(pool) == {1, 2, 3}


class TestHitRateAccounting:
    def test_empty_pool_reports_zero(self, store):
        pool = BufferPool(store, capacity_pages=2)
        assert pool.hit_rate == 0.0

    def test_exact_ratio(self, store):
        pool = BufferPool(store, capacity_pages=2)
        pool.read(0, 8)          # miss
        pool.read(16, 8)         # hit (same page)
        pool.read(32, 8)         # hit
        pool.read(PAGE_SIZE_BYTES, 8)  # miss
        assert pool.hits == 2
        assert pool.misses == 2
        assert pool.hit_rate == 0.5

    def test_multi_page_read_counts_each_page(self, store):
        pool = BufferPool(store, capacity_pages=4)
        pool.read(0, 2 * PAGE_SIZE_BYTES)  # pages 0 and 1: two misses
        assert (pool.hits, pool.misses) == (0, 2)
        pool.read(0, 2 * PAGE_SIZE_BYTES)  # both cached now
        assert (pool.hits, pool.misses) == (2, 2)


class TestDrop:
    def test_drop_empties_the_pool(self, store):
        pool = BufferPool(store, capacity_pages=3)
        for page in range(3):
            pool.read(page * PAGE_SIZE_BYTES, 8)
        pool.drop()
        assert pool.resident_pages == 0

    def test_drop_preserves_counters(self, store):
        pool = BufferPool(store, capacity_pages=2)
        pool.read(0, 8)
        pool.read(8, 8)
        pool.drop()
        assert (pool.hits, pool.misses) == (1, 1)

    def test_reads_after_drop_miss_again(self, store):
        pool = BufferPool(store, capacity_pages=2)
        pool.read(0, 8)
        pool.drop()
        pool.read(0, 8)
        assert pool.misses == 2

    def test_drop_is_idempotent(self, store):
        memory = MemoryModel()
        pool = BufferPool(store, capacity_pages=2, memory=memory)
        pool.read(0, 8)
        pool.drop()
        pool.drop()
        assert memory.in_use_units == 0
        assert pool.resident_pages == 0

    def test_drop_then_reuse_under_clock_policy(self, store):
        pool = BufferPool(store, capacity_pages=2, policy="clock")
        for page in range(4):
            pool.read(page * PAGE_SIZE_BYTES, 8)
        pool.drop()
        for page in range(4):
            pool.read(page * PAGE_SIZE_BYTES, 8)
        assert pool.resident_pages <= 2
