"""Tests for the disk-resident adjacency graph."""

import pytest
from hypothesis import given, settings

from repro.errors import StorageError, StorageFormatError
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.diskgraph import DiskGraph
from repro.storage.iostats import IOStats

from tests.helpers import seeded_gnp, small_graphs


@pytest.fixture
def triangle_disk(tmp_path):
    g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    return DiskGraph.create(tmp_path / "g.bin", g)


class TestCreateAndOpen:
    def test_counts_in_header(self, triangle_disk):
        assert triangle_disk.num_vertices == 4
        assert triangle_disk.num_edges == 4

    def test_open_reads_header(self, triangle_disk):
        reopened = DiskGraph.open(triangle_disk.path, IOStats())
        assert reopened.num_vertices == 4
        assert reopened.num_edges == 4

    def test_open_rejects_non_diskgraph_file(self, tmp_path):
        path = tmp_path / "bogus.bin"
        path.write_bytes(b"not a graph file at all....")
        with pytest.raises(StorageFormatError):
            DiskGraph.open(path)

    def test_out_of_order_records_rejected(self, tmp_path):
        records = [(2, [], 0), (1, [], 0)]
        with pytest.raises(StorageError):
            DiskGraph.from_records(tmp_path / "g.bin", records)

    def test_asymmetric_records_rejected(self, tmp_path):
        records = [(0, [1], 1), (1, [], 0)]
        with pytest.raises(StorageError):
            DiskGraph.from_records(tmp_path / "g.bin", records)

    def test_empty_graph(self, tmp_path):
        disk = DiskGraph.create(tmp_path / "e.bin", AdjacencyGraph())
        assert disk.num_vertices == 0
        assert list(disk.scan()) == []


class TestScan:
    def test_records_in_vertex_order(self, triangle_disk):
        vertices = [record.vertex for record in triangle_disk.scan()]
        assert vertices == [0, 1, 2, 3]

    def test_neighbors_sorted_and_complete(self, triangle_disk):
        by_vertex = {r.vertex: r.neighbors for r in triangle_disk.scan()}
        assert by_vertex[2] == (0, 1, 3)
        assert by_vertex[3] == (2,)

    def test_original_degree_captured(self, triangle_disk):
        record = next(r for r in triangle_disk.scan() if r.vertex == 2)
        assert record.original_degree == 3

    def test_scan_counts_one_sequential_scan(self, triangle_disk):
        before = triangle_disk.io_stats.sequential_scans
        list(triangle_disk.scan())
        assert triangle_disk.io_stats.sequential_scans == before + 1

    @settings(max_examples=25)
    @given(small_graphs())
    def test_round_trip_property(self, tmp_path_factory, g):
        tmp = tmp_path_factory.mktemp("dg")
        disk = DiskGraph.create(tmp / "g.bin", g)
        back = disk.to_adjacency_graph()
        assert back.num_vertices == g.num_vertices
        assert back.num_edges == g.num_edges
        for v in g:
            assert back.neighbors(v) == g.neighbors(v)


class TestTargetedLoads:
    def test_load_adjacency_subset(self, triangle_disk):
        loaded = triangle_disk.load_adjacency([1, 3])
        assert loaded == {1: (0, 2), 3: (2,)}

    def test_load_adjacency_missing_vertex_just_absent(self, triangle_disk):
        assert triangle_disk.load_adjacency([99]) == {}

    def test_original_degrees_lookup(self, triangle_disk):
        assert triangle_disk.original_degrees([0, 3]) == {0: 2, 3: 1}


class TestRewrite:
    def test_rewrite_without_removes_vertices_and_edges(self, triangle_disk, tmp_path):
        residual = triangle_disk.rewrite_without({2}, tmp_path / "r.bin")
        assert residual.num_vertices == 3
        assert residual.num_edges == 1  # only (0, 1) survives

    def test_rewrite_preserves_original_degrees(self, triangle_disk, tmp_path):
        residual = triangle_disk.rewrite_without({2}, tmp_path / "r.bin")
        degrees = residual.original_degrees([3])
        assert degrees[3] == 1  # original degree, though now isolated

    def test_rewrite_with_empty_removal_is_copy(self, triangle_disk, tmp_path):
        residual = triangle_disk.rewrite_without(set(), tmp_path / "r.bin")
        assert residual.num_edges == triangle_disk.num_edges

    def test_rewrite_larger_graph(self, tmp_path):
        g = seeded_gnp(40, 0.2, seed=1)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        removed = set(range(10))
        residual = disk.rewrite_without(removed, tmp_path / "r.bin")
        expected = g.copy()
        for v in removed:
            expected.remove_vertex(v)
        assert residual.num_edges == expected.num_edges
        assert residual.to_adjacency_graph().num_vertices == expected.num_vertices

    def test_delete_removes_file(self, triangle_disk):
        triangle_disk.delete()
        assert not triangle_disk.path.exists()
