"""Stateful property test: the buffer pool is transparent.

Arbitrary interleavings of reads through pools of every policy must
return exactly what direct file reads return, while respecting the
capacity bound and keeping memory accounting balanced.
"""

import tempfile
from pathlib import Path

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.storage.bufferpool import UNITS_PER_PAGE, BufferPool
from repro.storage.iostats import IOStats
from repro.storage.memory import MemoryModel
from repro.storage.pagestore import PAGE_SIZE_BYTES, PageStore

FILE_PAGES = 6
FILE_BYTES = FILE_PAGES * PAGE_SIZE_BYTES


class BufferPoolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self._tmp = tempfile.TemporaryDirectory()
        payload = bytes((i * 31) % 256 for i in range(FILE_BYTES))
        self._reference = payload
        self.store = PageStore(Path(self._tmp.name) / "data.bin", IOStats())
        self.store.write_all(payload)
        self.memory = MemoryModel()
        self.pools = {
            policy: BufferPool(
                self.store, capacity_pages=2, policy=policy, memory=self.memory
            )
            for policy in ("lru", "fifo", "clock")
        }

    @rule(
        offset=st.integers(min_value=0, max_value=FILE_BYTES - 1),
        length=st.integers(min_value=1, max_value=2 * PAGE_SIZE_BYTES),
    )
    def read(self, offset, length):
        length = min(length, FILE_BYTES - offset)
        expected = self._reference[offset : offset + length]
        for pool in self.pools.values():
            assert pool.read(offset, length) == expected

    @invariant()
    def capacity_respected(self):
        for pool in self.pools.values():
            assert pool.resident_pages <= pool.capacity_pages

    @invariant()
    def memory_matches_residency(self):
        resident = sum(pool.resident_pages for pool in self.pools.values())
        assert self.memory.in_use_units == resident * UNITS_PER_PAGE

    def teardown(self):
        for pool in self.pools.values():
            pool.drop()
        self._tmp.cleanup()


TestBufferPoolMachine = BufferPoolMachine.TestCase
TestBufferPoolMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
