"""Tests for the binary record codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageFormatError
from repro.storage.format import decode_record, encode_record, record_size


class TestRoundTrip:
    def test_simple_record(self):
        data = encode_record(7, [1, 2, 3], original_degree=5)
        record, end = decode_record(data)
        assert record.vertex == 7
        assert record.neighbors == (1, 2, 3)
        assert record.original_degree == 5
        assert record.degree == 3
        assert end == len(data)

    def test_empty_neighbor_list(self):
        data = encode_record(0, [], original_degree=0)
        record, _ = decode_record(data)
        assert record.neighbors == ()
        assert record.degree == 0

    def test_record_size_matches_encoding(self):
        data = encode_record(1, [9, 8], original_degree=2)
        assert len(data) == record_size(2)

    def test_two_records_back_to_back(self):
        blob = encode_record(1, [2], 1) + encode_record(2, [1], 1)
        first, offset = decode_record(blob)
        second, end = decode_record(blob, offset)
        assert first.vertex == 1
        assert second.vertex == 2
        assert end == len(blob)

    @given(
        st.integers(min_value=0, max_value=2**63),
        st.lists(st.integers(min_value=0, max_value=2**63), max_size=40),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_round_trip_property(self, vertex, neighbors, original):
        record, _ = decode_record(encode_record(vertex, neighbors, original))
        assert record.vertex == vertex
        assert record.neighbors == tuple(neighbors)
        assert record.original_degree == original


class TestErrors:
    def test_negative_vertex_rejected(self):
        with pytest.raises(StorageFormatError):
            encode_record(-1, [], 0)

    def test_negative_original_degree_rejected(self):
        with pytest.raises(StorageFormatError):
            encode_record(1, [], -1)

    def test_oversized_vertex_rejected(self):
        with pytest.raises(StorageFormatError):
            encode_record(2**64, [], 0)

    def test_truncated_header(self):
        with pytest.raises(StorageFormatError):
            decode_record(b"\x00\x01")

    def test_truncated_body(self):
        data = encode_record(1, [2, 3], 2)
        with pytest.raises(StorageFormatError):
            decode_record(data[:-4])
