"""Tests for the external-sort edge-list to DiskGraph conversion."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.convert import edge_list_file_to_disk_graph, edge_list_to_disk_graph
from repro.storage.edgelist import write_edge_list
from repro.storage.iostats import IOStats
from repro.storage.memory import MemoryModel

from tests.helpers import seeded_gnp


def convert(edges, tmp_path, **kwargs):
    return edge_list_to_disk_graph(
        edges, tmp_path / "out.bin", tmp_path / "runs", **kwargs
    )


class TestBasicConversion:
    def test_triangle(self, tmp_path):
        disk = convert([(0, 1), (1, 2), (0, 2)], tmp_path)
        assert disk.num_vertices == 3
        assert disk.num_edges == 3
        by_vertex = {r.vertex: r.neighbors for r in disk.scan()}
        assert by_vertex[1] == (0, 2)

    def test_duplicate_and_reversed_edges_collapse(self, tmp_path):
        disk = convert([(0, 1), (1, 0), (0, 1), (0, 1)], tmp_path)
        assert disk.num_edges == 1

    def test_unordered_input(self, tmp_path):
        edges = [(5, 3), (0, 9), (2, 1), (9, 5)]
        disk = convert(edges, tmp_path)
        assert disk.num_edges == 4
        vertices = [r.vertex for r in disk.scan()]
        assert vertices == sorted(vertices)

    def test_self_loop_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            convert([(1, 1)], tmp_path)

    def test_negative_vertex_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            convert([(-1, 2)], tmp_path)

    def test_empty_edge_list(self, tmp_path):
        disk = convert([], tmp_path)
        assert disk.num_vertices == 0
        assert disk.num_edges == 0

    def test_run_pairs_floor(self, tmp_path):
        with pytest.raises(StorageError):
            convert([(0, 1)], tmp_path, run_pairs=1)


class TestIsolatedVertices:
    def test_isolated_vertices_registered(self, tmp_path):
        disk = convert([(0, 5)], tmp_path, isolated_vertices=[2, 9])
        records = {r.vertex: r for r in disk.scan()}
        assert set(records) == {0, 2, 5, 9}
        assert records[2].degree == 0
        assert records[2].original_degree == 0

    def test_isolated_overlapping_edge_vertices_ignored(self, tmp_path):
        disk = convert([(0, 1)], tmp_path, isolated_vertices=[0, 1])
        assert disk.num_vertices == 2
        assert disk.num_edges == 1

    def test_only_isolated_vertices(self, tmp_path):
        disk = convert([], tmp_path, isolated_vertices=[3, 1, 2])
        assert [r.vertex for r in disk.scan()] == [1, 2, 3]


class TestExternalSortBehaviour:
    def test_multiple_runs_with_tiny_buffer(self, tmp_path):
        g = seeded_gnp(40, 0.3, seed=5)
        stats = IOStats()
        disk = convert(
            list(g.edges()), tmp_path, run_pairs=16, io_stats=stats
        )
        back = disk.to_adjacency_graph()
        assert back.num_edges == g.num_edges
        # Small runs force several spill files (writes beyond the output).
        assert stats.pages_written > disk.size_pages

    def test_run_files_cleaned_up(self, tmp_path):
        convert([(0, 1), (1, 2)], tmp_path, run_pairs=2)
        assert not list((tmp_path / "runs").glob("sort_run_*.bin"))

    def test_memory_charged_for_run_buffer(self, tmp_path):
        memory = MemoryModel()
        convert([(0, 1)], tmp_path, run_pairs=8, memory=memory)
        assert memory.peak_units >= 16
        assert memory.in_use_units == 0

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.integers(0, 10_000), st.integers(2, 40))
    def test_round_trip_property(self, tmp_path, seed, run_pairs):
        rng = random.Random(seed)
        n = rng.randint(2, 25)
        edges = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < 0.3
        ]
        rng.shuffle(edges)
        sub = tmp_path / f"case_{seed}_{run_pairs}"
        sub.mkdir(exist_ok=True)
        disk = edge_list_to_disk_graph(
            edges, sub / "out.bin", sub / "runs", run_pairs=run_pairs
        )
        back = disk.to_adjacency_graph()
        assert back.num_edges == len(set(edges))
        for u, v in edges:
            assert back.has_edge(u, v)


class TestFileConversion:
    def test_text_file_to_disk_graph(self, tmp_path):
        text = tmp_path / "edges.txt"
        write_edge_list(text, [(0, 1), (1, 2), (2, 0), (2, 3)])
        disk = edge_list_file_to_disk_graph(
            text, tmp_path / "out.bin", tmp_path / "runs"
        )
        assert disk.num_edges == 4
        assert disk.num_vertices == 4

    def test_matches_extmce_pipeline(self, tmp_path):
        from repro.baselines.bron_kerbosch import tomita_maximal_cliques
        from repro.core.extmce import ExtMCE, ExtMCEConfig

        g = seeded_gnp(30, 0.25, seed=8)
        disk = convert(list(g.edges()), tmp_path)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w"))
        assert set(algo.enumerate_cliques()) == set(tomita_maximal_cliques(g))
