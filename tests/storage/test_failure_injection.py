"""Failure-injection tests: corrupted and hostile on-disk state.

A production storage layer must fail loudly and precisely on damaged
input, never return partial graphs silently.
"""

import struct

import pytest

from repro.errors import StorageError, StorageFormatError
from repro.storage.diskgraph import DiskGraph
from repro.storage.format import FILE_MAGIC

from tests.helpers import seeded_gnp


@pytest.fixture
def healthy(tmp_path):
    g = seeded_gnp(15, 0.3, seed=1)
    return DiskGraph.create(tmp_path / "g.bin", g)


class TestCorruptedFiles:
    def test_truncated_mid_record(self, healthy):
        data = healthy.path.read_bytes()
        healthy.path.write_bytes(data[:-5])
        reopened = DiskGraph.open(healthy.path)
        with pytest.raises(StorageFormatError):
            list(reopened.scan())

    def test_trailing_garbage(self, healthy):
        with open(healthy.path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        reopened = DiskGraph.open(healthy.path)
        with pytest.raises(StorageFormatError):
            list(reopened.scan())

    def test_wrong_magic(self, healthy):
        data = bytearray(healthy.path.read_bytes())
        data[:8] = b"BOGUSMAG"
        healthy.path.write_bytes(bytes(data))
        with pytest.raises(StorageFormatError):
            DiskGraph.open(healthy.path)

    def test_zeroed_file(self, tmp_path):
        path = tmp_path / "zeros.bin"
        path.write_bytes(b"\x00" * 256)
        with pytest.raises(StorageFormatError):
            DiskGraph.open(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(StorageError):
            DiskGraph.open(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            DiskGraph.open(tmp_path / "nope.bin")

    def test_degree_field_larger_than_file(self, tmp_path):
        # Hand-craft a record claiming 1000 neighbors but supplying none.
        header = FILE_MAGIC + struct.pack("<QQ", 1, 500)
        record = struct.pack("<QII", 0, 1000, 1000)
        path = tmp_path / "lying.bin"
        path.write_bytes(header + record)
        reopened = DiskGraph.open(path)
        with pytest.raises(StorageFormatError):
            list(reopened.scan())


class TestExtMCEOnDamagedInput:
    def test_enumeration_surfaces_corruption(self, healthy, tmp_path):
        from repro.core.extmce import ExtMCE, ExtMCEConfig

        data = healthy.path.read_bytes()
        healthy.path.write_bytes(data[:-8])
        reopened = DiskGraph.open(healthy.path)
        algo = ExtMCE(reopened, ExtMCEConfig(workdir=tmp_path / "w"))
        with pytest.raises(StorageFormatError):
            list(algo.enumerate_cliques())

    def test_memory_fully_released_after_failure(self, healthy, tmp_path):
        from repro.core.extmce import ExtMCE, ExtMCEConfig
        from repro.storage.memory import MemoryModel

        data = healthy.path.read_bytes()
        healthy.path.write_bytes(data[: len(data) // 2])
        reopened = DiskGraph.open(healthy.path)
        memory = MemoryModel()
        algo = ExtMCE(reopened, ExtMCEConfig(workdir=tmp_path / "w"), memory=memory)
        with pytest.raises(StorageFormatError):
            list(algo.enumerate_cliques())
        # The h-vertex heap may legitimately hold entries mid-scan, but
        # nothing else can leak.
        leaked = {
            label: units
            for label, units in memory.by_label.items()
            if units and label != "h-vertex heap"
        }
        assert not leaked
