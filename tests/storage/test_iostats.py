"""Tests for I/O counters and the modelled disk-read time."""

from repro.storage.iostats import (
    PAGES_PER_SECOND_SEQUENTIAL,
    SECONDS_PER_SEEK,
    IOStats,
)


class TestCounters:
    def test_record_read_accumulates(self):
        stats = IOStats()
        stats.record_read(3)
        stats.record_read(2)
        assert stats.pages_read == 5

    def test_record_write_and_seek_and_scan(self):
        stats = IOStats()
        stats.record_write(4)
        stats.record_seek()
        stats.record_scan()
        assert stats.pages_written == 4
        assert stats.random_reads == 1
        assert stats.sequential_scans == 1


class TestSimulatedTime:
    def test_sequential_only(self):
        stats = IOStats(pages_read=PAGES_PER_SECOND_SEQUENTIAL)
        assert stats.simulated_read_seconds == 1.0

    def test_seek_penalty(self):
        stats = IOStats(random_reads=10)
        assert stats.simulated_read_seconds == 10 * SECONDS_PER_SEEK

    def test_mixed(self):
        stats = IOStats(pages_read=PAGES_PER_SECOND_SEQUENTIAL, random_reads=2)
        expected = 1.0 + 2 * SECONDS_PER_SEEK
        assert stats.simulated_read_seconds == expected


class TestMerge:
    def test_merged_with_sums_all_counters(self):
        a = IOStats(pages_read=1, pages_written=2, random_reads=3, sequential_scans=4)
        b = IOStats(pages_read=10, pages_written=20, random_reads=30, sequential_scans=40)
        merged = a.merged_with(b)
        assert merged.pages_read == 11
        assert merged.pages_written == 22
        assert merged.random_reads == 33
        assert merged.sequential_scans == 44

    def test_merge_leaves_inputs_untouched(self):
        a = IOStats(pages_read=1)
        b = IOStats(pages_read=2)
        a.merged_with(b)
        assert a.pages_read == 1
        assert b.pages_read == 2
