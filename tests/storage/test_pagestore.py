"""Tests for metered page-granular file access."""

import pytest

from repro.errors import StorageError
from repro.storage.iostats import IOStats
from repro.storage.pagestore import PAGE_SIZE_BYTES, PageStore


@pytest.fixture
def store(tmp_path):
    return PageStore(tmp_path / "data.bin", IOStats())


class TestWrites:
    def test_write_all_counts_pages(self, store):
        store.write_all(b"x" * (PAGE_SIZE_BYTES + 1))
        assert store.io_stats.pages_written == 2

    def test_append_counts_pages(self, store):
        store.write_all(b"")
        store.append(b"x" * 10)
        assert store.io_stats.pages_written == 1
        assert store.size_bytes() == 10

    def test_empty_write_counts_zero_pages(self, store):
        store.write_all(b"")
        assert store.io_stats.pages_written == 0
        assert store.exists()

    def test_size_pages(self, store):
        store.write_all(b"x" * (3 * PAGE_SIZE_BYTES))
        assert store.size_pages() == 3


class TestReads:
    def test_read_all_round_trip(self, store):
        payload = bytes(range(256)) * 100
        store.write_all(payload)
        assert store.read_all() == payload

    def test_scan_counts_pages_read(self, store):
        store.write_all(b"x" * (2 * PAGE_SIZE_BYTES))
        store.read_all()
        assert store.io_stats.pages_read == 2

    def test_scan_missing_file_raises(self, store):
        with pytest.raises(StorageError):
            list(store.scan_chunks())

    def test_read_at(self, store):
        store.write_all(b"abcdefgh")
        assert store.read_at(2, 3) == b"cde"

    def test_read_at_counts_seek(self, store):
        store.write_all(b"x" * PAGE_SIZE_BYTES * 2)
        store.read_at(0, 4)
        assert store.io_stats.random_reads == 1
        assert store.io_stats.pages_read == 1

    def test_read_at_straddling_pages_counts_both(self, store):
        store.write_all(b"x" * (2 * PAGE_SIZE_BYTES))
        store.read_at(PAGE_SIZE_BYTES - 2, 4)
        assert store.io_stats.pages_read == 2

    def test_short_read_raises(self, store):
        store.write_all(b"abc")
        with pytest.raises(StorageError):
            store.read_at(0, 10)

    def test_negative_offset_rejected(self, store):
        store.write_all(b"abc")
        with pytest.raises(StorageError):
            store.read_at(-1, 1)


class TestPatchAndDelete:
    def test_patch_in_place(self, store):
        store.write_all(b"hello world")
        store.patch(6, b"there")
        assert store.read_all() == b"hello there"

    def test_patch_beyond_end_rejected(self, store):
        store.write_all(b"abc")
        with pytest.raises(StorageError):
            store.patch(2, b"xy")

    def test_delete_then_exists_false(self, store):
        store.write_all(b"abc")
        store.delete()
        assert not store.exists()
        store.delete()  # idempotent

    def test_scan_counter_owned_by_diskgraph_not_pagestore(self, store):
        store.write_all(b"x" * 100)
        store.read_all()
        assert store.io_stats.sequential_scans == 0


class TestZeroLengthAccounting:
    """A 0-byte transfer touches no device and must record nothing."""

    def test_zero_length_read_records_nothing(self, store):
        store.write_all(b"payload")
        before_reads = store.io_stats.pages_read
        before_seeks = store.io_stats.random_reads
        assert store.read_at(3, 0) == b""
        assert store.io_stats.pages_read == before_reads
        assert store.io_stats.random_reads == before_seeks

    def test_empty_patch_records_nothing(self, store):
        store.write_all(b"payload")
        before = store.io_stats.pages_written
        store.patch(3, b"")
        assert store.io_stats.pages_written == before
        assert store.read_all() == b"payload"

    def test_single_byte_read_still_counts_one_page(self, store):
        store.write_all(b"payload")
        before = store.io_stats.pages_read
        store.read_at(0, 1)
        assert store.io_stats.pages_read == before + 1
