"""Tests for text edge-list I/O."""

import pytest

from repro.errors import StorageFormatError
from repro.storage.edgelist import (
    read_edge_list,
    read_timestamped_edge_list,
    write_edge_list,
    write_timestamped_edge_list,
)


class TestPlainEdgeList:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "edges.txt"
        edges = [(0, 1), (1, 2), (10, 20)]
        assert write_edge_list(path, edges) == 3
        assert list(read_edge_list(path)) == edges

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n\n0 1\n  \n2 3\n")
        assert list(read_edge_list(path)) == [(0, 1), (2, 3)]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n0 1 2\n")
        with pytest.raises(StorageFormatError, match=":2"):
            list(read_edge_list(path))

    def test_non_integer_vertex_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b\n")
        with pytest.raises(StorageFormatError):
            list(read_edge_list(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("")
        assert list(read_edge_list(path)) == []


class TestTimestampedEdgeList:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "stream.txt"
        stream = [(0, 1, 2), (5, 3, 4)]
        assert write_timestamped_edge_list(path, stream) == 2
        assert list(read_timestamped_edge_list(path)) == stream

    def test_wrong_field_count_raises(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("1 2\n")
        with pytest.raises(StorageFormatError):
            list(read_timestamped_edge_list(path))

    def test_non_integer_field_raises(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("1 2 x\n")
        with pytest.raises(StorageFormatError):
            list(read_timestamped_edge_list(path))
