"""Tests for the random-access disk graph and the on-disk MCE strawman."""

import pytest

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.baselines.ondisk import tomita_maximal_cliques_on_disk
from repro.errors import VertexNotFoundError
from repro.storage.diskgraph import DiskGraph
from repro.storage.memory import MemoryModel
from repro.storage.random_access import RandomAccessDiskGraph

from tests.helpers import cliques_of, figure1_graph, seeded_gnp


@pytest.fixture
def disk(tmp_path):
    return DiskGraph.create(tmp_path / "g.bin", seeded_gnp(30, 0.25, seed=3))


class TestRandomAccess:
    def test_neighbors_match_sequential_view(self, disk):
        radg = RandomAccessDiskGraph(disk, capacity_pages=2)
        full = disk.to_adjacency_graph()
        for v in radg.vertices():
            assert radg.neighbors(v) == full.neighbors(v)

    def test_missing_vertex_raises(self, disk):
        radg = RandomAccessDiskGraph(disk, capacity_pages=2)
        with pytest.raises(VertexNotFoundError):
            radg.neighbors(9999)

    def test_degree(self, disk):
        radg = RandomAccessDiskGraph(disk, capacity_pages=2)
        full = disk.to_adjacency_graph()
        assert radg.degree(5) == full.degree(5)

    def test_lookups_cost_seeks_on_miss_only(self, disk):
        radg = RandomAccessDiskGraph(disk, capacity_pages=8)
        seeks_before = disk.io_stats.random_reads
        radg.neighbors(0)
        first_cost = disk.io_stats.random_reads - seeks_before
        radg.neighbors(0)  # same pages: pure hit
        assert disk.io_stats.random_reads - seeks_before == first_cost
        assert radg.pool.hits >= 1

    def test_memory_charges_index_and_pool(self, disk):
        memory = MemoryModel()
        radg = RandomAccessDiskGraph(disk, capacity_pages=2, memory=memory)
        radg.neighbors(0)
        assert memory.by_label["offset index"] > 0
        assert memory.by_label["buffer pool"] > 0
        radg.close()
        assert memory.in_use_units == 0


class TestOnDiskEnumeration:
    def test_matches_in_memory_oracle(self, tmp_path):
        g = figure1_graph()
        disk = DiskGraph.create(tmp_path / "f.bin", g)
        radg = RandomAccessDiskGraph(disk, capacity_pages=2)
        assert cliques_of(tomita_maximal_cliques_on_disk(radg)) == cliques_of(
            tomita_maximal_cliques(g)
        )

    def test_random_graph_oracle(self, disk):
        radg = RandomAccessDiskGraph(disk, capacity_pages=4)
        full = disk.to_adjacency_graph()
        assert cliques_of(tomita_maximal_cliques_on_disk(radg)) == cliques_of(
            tomita_maximal_cliques(full)
        )

    def test_incurs_random_reads(self, tmp_path):
        # Needs a graph spanning many pages, else one page caches it all.
        g = seeded_gnp(400, 0.05, seed=2)
        disk = DiskGraph.create(tmp_path / "big.bin", g)
        assert disk.size_pages > 10
        before = disk.io_stats.random_reads
        radg = RandomAccessDiskGraph(disk, capacity_pages=1)
        list(tomita_maximal_cliques_on_disk(radg))
        # The paper's point: arbitrary access order means real seek traffic.
        assert disk.io_stats.random_reads - before > disk.size_pages

    def test_bigger_pool_fewer_seeks(self, tmp_path):
        g = seeded_gnp(40, 0.25, seed=9)
        results = []
        for capacity in (1, 64):
            disk = DiskGraph.create(tmp_path / f"g{capacity}.bin", g)
            before = disk.io_stats.random_reads
            radg = RandomAccessDiskGraph(disk, capacity_pages=capacity)
            list(tomita_maximal_cliques_on_disk(radg))
            results.append(disk.io_stats.random_reads - before)
        assert results[1] <= results[0]
