"""Format-v2 integrity: record CRCs, header CRC, v1 compatibility."""

import pytest

from repro.errors import CorruptDataError, StorageError, StorageFormatError
from repro.storage.diskgraph import DiskGraph
from repro.storage.format import (
    FILE_MAGIC,
    FILE_MAGIC_V2,
    decode_record,
    encode_record,
    record_size,
)
from repro.storage.partitions import (
    encode_partition_record,
    parse_partition_records,
)

from tests.helpers import seeded_gnp


class TestRecordCodec:
    def test_checksummed_round_trip(self):
        data = encode_record(7, [1, 2, 3], original_degree=5, checksum=True)
        assert len(data) == record_size(3, checksum=True) == record_size(3) + 4
        record, end = decode_record(data, checksum=True)
        assert record.vertex == 7
        assert record.neighbors == (1, 2, 3)
        assert end == len(data)

    def test_flipped_body_byte_detected(self):
        data = bytearray(encode_record(7, [1, 2, 3], 5, checksum=True))
        data[20] ^= 0x01  # inside the neighbor block
        with pytest.raises(CorruptDataError):
            decode_record(bytes(data), checksum=True)

    def test_flipped_header_byte_detected(self):
        data = bytearray(encode_record(7, [1, 2, 3], 5, checksum=True))
        data[0] ^= 0x01  # vertex id
        with pytest.raises(CorruptDataError):
            decode_record(bytes(data), checksum=True)

    def test_verify_off_accepts_damage(self):
        data = bytearray(encode_record(7, [1, 2, 3], 5, checksum=True))
        data[16] ^= 0xFF
        record, _ = decode_record(bytes(data), checksum=True, verify=False)
        assert record.vertex == 7  # header untouched; body wrong, unchecked

    def test_truncated_crc_is_format_error(self):
        data = encode_record(1, [2], 1, checksum=True)
        with pytest.raises(StorageFormatError):
            decode_record(data[:-2], checksum=True)


class TestDiskGraphFormats:
    @pytest.fixture
    def graph(self):
        return seeded_gnp(30, 0.2, seed=7)

    def test_new_files_are_v2(self, tmp_path, graph):
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        assert disk.format_version == 2
        assert (tmp_path / "g.bin").read_bytes()[:8] == FILE_MAGIC_V2
        reopened = DiskGraph.open(disk.path)
        assert reopened.format_version == 2
        assert reopened.to_adjacency_graph().num_edges == graph.num_edges

    def test_v1_files_still_open_and_scan(self, tmp_path, graph):
        records = (
            (v, sorted(graph.neighbors(v)), graph.degree(v))
            for v in sorted(graph.vertices())
        )
        disk = DiskGraph.from_records(tmp_path / "v1.bin", records, checksum=False)
        assert disk.format_version == 1
        assert (tmp_path / "v1.bin").read_bytes()[:8] == FILE_MAGIC
        reopened = DiskGraph.open(disk.path)
        assert reopened.format_version == 1
        assert reopened.to_adjacency_graph().num_edges == graph.num_edges

    def test_v1_and_v2_hold_identical_adjacency(self, tmp_path, graph):
        v2 = DiskGraph.create(tmp_path / "v2.bin", graph)
        records = (
            (v, sorted(graph.neighbors(v)), graph.degree(v))
            for v in sorted(graph.vertices())
        )
        v1 = DiskGraph.from_records(tmp_path / "v1.bin", records, checksum=False)
        assert list(v2.scan()) == list(v1.scan())

    def test_flipped_record_byte_fails_scan(self, tmp_path, graph):
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        raw = bytearray(disk.path.read_bytes())
        raw[disk.header_bytes + 18] ^= 0xFF  # inside the first record
        disk.path.write_bytes(bytes(raw))
        with pytest.raises((CorruptDataError, StorageError)):
            list(DiskGraph.open(disk.path).scan())

    def test_flipped_header_count_fails_open(self, tmp_path, graph):
        disk = DiskGraph.create(tmp_path / "g.bin", graph)
        raw = bytearray(disk.path.read_bytes())
        raw[10] ^= 0xFF  # inside the vertex count
        disk.path.write_bytes(bytes(raw))
        with pytest.raises(CorruptDataError):
            DiskGraph.open(disk.path)

    def test_verify_toggle_propagates_to_residual(self, tmp_path, graph):
        disk = DiskGraph.create(tmp_path / "g.bin", graph, verify_checksums=False)
        residual = disk.rewrite_without([0, 1, 2], tmp_path / "r.bin")
        assert residual.verify_checksums is False

    def test_header_bytes_by_version(self, tmp_path, graph):
        v2 = DiskGraph.create(tmp_path / "v2.bin", graph)
        assert v2.header_bytes == 28
        records = (
            (v, sorted(graph.neighbors(v)), graph.degree(v))
            for v in sorted(graph.vertices())
        )
        v1 = DiskGraph.from_records(tmp_path / "v1.bin", records, checksum=False)
        assert v1.header_bytes == 24


class TestPartitionRecords:
    def test_round_trip(self):
        blob = encode_partition_record(5, [1, 2, 9]) + encode_partition_record(6, [])
        loaded = parse_partition_records(blob)
        assert loaded == {5: frozenset({1, 2, 9}), 6: frozenset()}

    def test_flipped_byte_detected(self):
        blob = bytearray(encode_partition_record(5, [1, 2, 9]))
        blob[-3] ^= 0xFF  # inside the neighbor block
        with pytest.raises(CorruptDataError):
            parse_partition_records(bytes(blob))

    def test_verify_off_accepts_damage(self):
        blob = bytearray(encode_partition_record(5, [1, 2, 9]))
        blob[-3] ^= 0x01
        loaded = parse_partition_records(bytes(blob), verify=False)
        assert 5 in loaded

    def test_truncation_is_format_error(self):
        blob = encode_partition_record(5, [1, 2, 9])
        with pytest.raises(StorageFormatError):
            parse_partition_records(blob[:-4])
