"""Tests for the h-neighbor partition spill store (Section 4.2.3)."""

import pytest

from repro.errors import StorageError
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.diskgraph import DiskGraph
from repro.storage.memory import MemoryModel
from repro.storage.partitions import HnbPartitionStore

from tests.helpers import seeded_gnp


@pytest.fixture
def disk(tmp_path):
    # 0-3 form a clique; 4, 5 hang off it; edges (4,5) and (2,3) matter.
    g = AdjacencyGraph.from_edges(
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)]
    )
    return DiskGraph.create(tmp_path / "g.bin", g)


def build(disk, tmp_path, members, budget=1000, memory=None, max_resident=4):
    return HnbPartitionStore.build(
        disk, members, tmp_path / "parts", budget, memory=memory, max_resident=max_resident
    )


class TestBuild:
    def test_members_partitioned_in_order(self, disk, tmp_path):
        store = build(disk, tmp_path, [2, 3, 4, 5], budget=4)
        assert store.num_partitions >= 2

    def test_single_partition_when_budget_large(self, disk, tmp_path):
        store = build(disk, tmp_path, [4, 5])
        assert store.num_partitions == 1

    def test_zero_budget_rejected(self, disk, tmp_path):
        with pytest.raises(StorageError):
            build(disk, tmp_path, [4, 5], budget=0)

    def test_duplicate_members_collapse(self, disk, tmp_path):
        store = build(disk, tmp_path, [4, 4, 5, 4])
        sub = store.induced_subgraph([4, 5])
        assert sub.has_edge(4, 5)


class TestInducedSubgraph:
    def test_within_member_edges_only(self, disk, tmp_path):
        store = build(disk, tmp_path, [2, 3, 4, 5])
        sub = store.induced_subgraph([4, 5])
        assert sub.has_edge(4, 5)
        assert sub.num_vertices == 2

    def test_edges_to_non_members_excluded(self, disk, tmp_path):
        store = build(disk, tmp_path, [4, 5])
        sub = store.induced_subgraph([4, 5])
        # 4-2 and 5-3 lead outside the member set and must not appear.
        assert sub.num_edges == 1

    def test_subset_query(self, disk, tmp_path):
        store = build(disk, tmp_path, [2, 3, 4, 5])
        sub = store.induced_subgraph([2, 3])
        assert sub.has_edge(2, 3)

    def test_unknown_vertex_raises(self, disk, tmp_path):
        store = build(disk, tmp_path, [4, 5])
        with pytest.raises(StorageError):
            store.induced_subgraph([0])

    def test_isolated_member(self, disk, tmp_path):
        store = build(disk, tmp_path, [4])
        sub = store.induced_subgraph([4])
        assert sub.num_vertices == 1
        assert sub.num_edges == 0

    def test_matches_in_memory_induced_subgraph(self, tmp_path):
        g = seeded_gnp(30, 0.3, seed=7)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        members = list(range(5, 25))
        store = build(disk, tmp_path, members, budget=30)
        for query in ([5, 6, 7], [10, 20, 24], members):
            got = store.induced_subgraph(query)
            expected = g.induced_subgraph(query)
            assert got.num_edges == expected.num_edges
            for u, v in expected.edges():
                assert got.has_edge(u, v)


class TestResidencyAndMemory:
    def test_memory_charged_while_resident(self, disk, tmp_path):
        memory = MemoryModel()
        store = build(disk, tmp_path, [2, 3, 4, 5], memory=memory)
        store.induced_subgraph([4, 5])
        assert memory.in_use_units > 0
        store.close()
        assert memory.in_use_units == 0

    def test_eviction_respects_max_resident(self, disk, tmp_path):
        memory = MemoryModel()
        store = build(disk, tmp_path, [2, 3, 4, 5], budget=3, max_resident=1)
        assert store.num_partitions >= 2
        store.induced_subgraph([2])
        first_units = memory.in_use_units
        store.induced_subgraph([5])
        # old partition evicted; only one resident at a time
        assert memory.in_use_units <= first_units + 6
        store.close()

    def test_partition_loads_counted(self, disk, tmp_path):
        store = build(disk, tmp_path, [2, 3, 4, 5], budget=3, max_resident=1)
        store.induced_subgraph([2])
        store.induced_subgraph([2])
        assert store.partition_loads == 1  # second query served from cache

    def test_partitions_for_key(self, disk, tmp_path):
        store = build(disk, tmp_path, [2, 3, 4, 5], budget=3)
        key = store.partitions_for([2, 5])
        assert isinstance(key, frozenset)
        assert len(key) >= 1

    def test_close_removes_spill_files(self, disk, tmp_path):
        store = build(disk, tmp_path, [2, 3])
        store.close()
        assert not any((tmp_path / "parts").glob("*.bin"))
