"""Cross-module edge cases and error paths not covered elsewhere."""

import pytest

from repro.core.categories import InMemoryPeripheryAdjacency, compute_core_plus_max_cliques
from repro.core.clique_tree import CliqueTree, build_clique_tree
from repro.core.hstar import StarGraph, extract_hstar_graph
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.diskgraph import DiskGraph

from tests.helpers import cliques_of


class TestDegenerateStarGraphs:
    def test_empty_star(self):
        star = StarGraph(core=frozenset(), neighbor_lists={})
        assert star.periphery == frozenset()
        assert star.size_edges == 0
        assert star.memory_units == 0

    def test_star_with_isolated_core_vertex(self):
        star = StarGraph(core=frozenset({7}), neighbor_lists={7: frozenset()})
        tree, core_maximal = build_clique_tree(star)
        assert cliques_of(tree.cliques()) == {frozenset({7})}
        assert core_maximal == {frozenset({7})}

    def test_categories_on_core_only_graph(self):
        # A clique of core vertices with no periphery at all.
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        star = StarGraph(
            core=frozenset(g.vertices()),
            neighbor_lists={v: frozenset(g.neighbors(v)) for v in g.vertices()},
        )
        _, core_maximal = build_clique_tree(star)
        cats = compute_core_plus_max_cliques(
            star, core_maximal, InMemoryPeripheryAdjacency(g)
        )
        assert cliques_of(cats.m1) == {frozenset({0, 1, 2})}
        assert not cats.m2 and not cats.m3

    def test_star_periphery_only_neighbors(self):
        # Star graph: one hub, all neighbors periphery.
        g = AdjacencyGraph.from_edges([(0, i) for i in range(1, 6)])
        star = extract_hstar_graph(g)
        assert star.h == 1
        cats = compute_core_plus_max_cliques(
            star,
            build_clique_tree(star)[1],
            InMemoryPeripheryAdjacency(g),
        )
        assert cliques_of(cats.all_cliques()) == {
            frozenset({0, i}) for i in range(1, 6)
        }


class TestCliqueTreeCorners:
    def test_remove_prefix_clique_keeps_extension(self):
        star = StarGraph(
            core=frozenset({1, 2, 3}),
            neighbor_lists={
                1: frozenset({2, 3}),
                2: frozenset({1, 3}),
                3: frozenset({1, 2}),
            },
        )
        tree = CliqueTree.for_star(star)
        tree.insert({1, 2})
        tree.insert({1, 2, 3})  # prefix relationship (transient state)
        assert tree.remove({1, 2})
        assert {1, 2, 3} in tree
        assert {1, 2} not in tree

    def test_num_cliques_tracks_inserts_and_removes(self):
        star = StarGraph(core=frozenset({1, 2}), neighbor_lists={1: frozenset({2}), 2: frozenset({1})})
        tree = CliqueTree.for_star(star)
        assert tree.num_cliques == 0
        tree.insert({1, 2})
        tree.insert({1})
        assert tree.num_cliques == 2
        tree.remove({1})
        assert tree.num_cliques == 1


class TestExtMCETinyGraphs:
    @pytest.mark.parametrize(
        "edges,vertices,expected",
        [
            ([], [0], {frozenset({0})}),
            ([(0, 1)], [], {frozenset({0, 1})}),
            ([(0, 1), (2, 3)], [], {frozenset({0, 1}), frozenset({2, 3})}),
            ([(0, 1), (0, 2)], [], {frozenset({0, 1}), frozenset({0, 2})}),
        ],
    )
    def test_tiny_graphs(self, tmp_path, edges, vertices, expected):
        g = AdjacencyGraph.from_edges(edges, vertices=vertices)
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w"))
        assert cliques_of(algo.enumerate_cliques()) == expected

    def test_two_hub_bowtie(self, tmp_path):
        # Two triangles sharing a vertex; the shared vertex dominates.
        g = AdjacencyGraph.from_edges(
            [(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (3, 4)]
        )
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w"))
        assert cliques_of(algo.enumerate_cliques()) == {
            frozenset({0, 1, 2}), frozenset({0, 3, 4})
        }

    def test_rerunning_same_instance_workdir(self, tmp_path):
        # Two independent runs sharing a workdir must not interfere.
        g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        disk = DiskGraph.create(tmp_path / "g.bin", g)
        work = tmp_path / "w"
        first = cliques_of(
            ExtMCE(disk, ExtMCEConfig(workdir=work)).enumerate_cliques()
        )
        second = cliques_of(
            ExtMCE(disk, ExtMCEConfig(workdir=work)).enumerate_cliques()
        )
        assert first == second == {frozenset({0, 1, 2})}


class TestAnalysisCorners:
    def test_render_table_single_column(self):
        from repro.analysis.tables import render_table

        text = render_table("T", ["only"], [["a"], ["bb"]])
        assert "only" in text and "bb" in text

    def test_hstar_sizes_on_empty_graph(self):
        from repro.analysis.metrics import hstar_sizes

        g = AdjacencyGraph()
        star = StarGraph(core=frozenset(), neighbor_lists={})
        sizes = hstar_sizes(g, star)
        assert sizes.star_fraction == 0.0
        assert sizes.extended_fraction == 0.0
