"""Protein-complex detection on a protein-interaction network.

A classic MCE application (the paper cites [29], [23]): candidate protein
complexes are dense, mutually-interacting protein groups — maximal cliques
of the interaction network.  This example runs ExtMCE over a synthetic
HPRD-like network, filters complexes by size, and shows where the
h-vertices (hub proteins) sit in them.

Run with::

    python examples/protein_complexes.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DiskGraph, ExtMCE, ExtMCEConfig, extract_hstar_graph
from repro.generators import generate_dataset

MIN_COMPLEX_SIZE = 3


def main() -> None:
    network = generate_dataset("protein")
    print(
        f"protein interaction network: {network.num_vertices} proteins, "
        f"{network.num_edges} interactions"
    )

    star = extract_hstar_graph(network)
    print(f"hub proteins (h-vertices): {star.h} — each with >= {star.h} interactions")

    complexes = []
    with tempfile.TemporaryDirectory() as tmp:
        disk = DiskGraph.create(Path(tmp) / "ppi.bin", network)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp))
        for clique in algo.enumerate_cliques():
            if len(clique) >= MIN_COMPLEX_SIZE:
                complexes.append(clique)
    print(f"\ntotal maximal cliques     : {algo.report.total_cliques}")
    print(f"candidate complexes (>= {MIN_COMPLEX_SIZE}): {len(complexes)}")

    complexes.sort(key=len, reverse=True)
    print("\nlargest candidate complexes:")
    for clique in complexes[:5]:
        hubs = len(clique & star.core)
        print(
            f"  size {len(clique):2d}  proteins {sorted(clique)[:6]}..."
            f"  ({hubs} hub protein{'s' if hubs != 1 else ''})"
        )

    with_hub = sum(1 for clique in complexes if clique & star.core)
    print(
        f"\ncomplexes containing a hub protein: {with_hub}/{len(complexes)} "
        f"({100 * with_hub / max(len(complexes), 1):.0f}%)"
    )
    print(
        "hub-centred complexes are exactly the ones the dynamic maintainer\n"
        "keeps current as the interaction network grows (paper Section 5)."
    )


if __name__ == "__main__":
    main()
