"""Overlapping community detection by clique percolation.

The paper motivates MCE with social network analysis; the classic
downstream consumer is clique percolation (Palla et al.): overlapping
communities are unions of maximal cliques of size >= k chained by
(k-1)-vertex overlaps.  This example streams ExtMCE's output straight
into the percolation, plus a top-k report of the densest groups.

Run with::

    python examples/community_detection.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    DiskGraph,
    ExtMCE,
    ExtMCEConfig,
    k_clique_communities,
    top_k_cliques,
)
from repro.generators import generate_dataset

PERCOLATION_K = 4


def main() -> None:
    network = generate_dataset("blogs")
    print(
        f"blogs network: {network.num_vertices} blogs, "
        f"{network.num_edges} co-occurrence edges"
    )

    with tempfile.TemporaryDirectory() as tmp:
        disk = DiskGraph.create(Path(tmp) / "blogs.bin", network)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp))
        cliques = list(algo.enumerate_cliques())
    print(f"maximal cliques: {len(cliques)}")

    densest = top_k_cliques(cliques, 5)
    print("\ndensest groups (top-5 maximal cliques):")
    for clique in densest:
        print(f"  size {len(clique)}: {sorted(clique)}")

    communities = k_clique_communities(cliques, PERCOLATION_K)
    print(f"\n{PERCOLATION_K}-clique-percolation communities: {len(communities)}")
    for community in communities[:5]:
        print(f"  {len(community)} members, e.g. {sorted(community)[:8]}")
    if communities:
        covered = set().union(*communities)
        print(
            f"\ncommunity coverage: {len(covered)} blogs "
            f"({100 * len(covered) / network.num_vertices:.1f}% of the network) "
            f"sit inside at least one dense community"
        )


if __name__ == "__main__":
    main()
