"""Core-periphery analysis of a social network via the H*-graph.

The paper's Section 6.1 argument: the h-vertices form a small core that is
close to everything and touches most of the network's clique structure.
This example measures that on a blogs-like co-occurrence network — the
centrality of the core, how far it reaches, and how the maximal cliques
distribute over core and periphery.

Run with::

    python examples/social_network_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CliqueCounter, DiskGraph, ExtMCE, ExtMCEConfig, extract_hstar_graph
from repro.analysis import hstar_sizes
from repro.generators import generate_dataset
from repro.graph.stats import average_closeness, reachability_fraction


def main() -> None:
    network = generate_dataset("blogs")
    print(
        f"blogs network: {network.num_vertices} blogs, "
        f"{network.num_edges} co-occurrence edges"
    )

    star = extract_hstar_graph(network)
    sizes = hstar_sizes(network, star)
    print(f"\ncore (h-vertices)      : {sizes.h}")
    print(f"periphery (h-neighbors): {sizes.num_periphery}")
    print(f"|G_H|  = {sizes.core_graph_edges} edges ({100 * sizes.core_fraction:.0f}% of G)")
    print(f"|G_H*| = {sizes.star_graph_edges} edges ({100 * sizes.star_fraction:.0f}% of G)")
    print(f"|G_H+| = {sizes.extended_graph_edges} edges ({100 * sizes.extended_fraction:.0f}% of G)")

    closeness = average_closeness(network, star.core, sample_size=16, seed=0)
    reach = reachability_fraction(network, star.core)
    print(f"\ncore closeness (avg hops to anyone): {closeness:.1f}")
    print(f"core reachability                  : {100 * reach:.0f}% of the network")

    counter = CliqueCounter(
        tracked_sets={"core": star.core, "periphery": star.periphery}
    )
    with tempfile.TemporaryDirectory() as tmp:
        disk = DiskGraph.create(Path(tmp) / "blogs.bin", network)
        ExtMCE(disk, ExtMCEConfig(workdir=tmp)).run(sink=counter)

    print(f"\nmaximal cliques (communities)      : {counter.total}")
    print(
        f"  touching the core                : {counter.tracked_counts['core']} "
        f"({100 * counter.tracked_counts['core'] / counter.total:.0f}%)"
    )
    print(
        f"  touching the periphery           : {counter.tracked_counts['periphery']} "
        f"({100 * counter.tracked_counts['periphery'] / counter.total:.0f}%)"
    )
    print(f"  largest community                : {counter.max_size} members")
    print(f"  mean community size              : {counter.average_size:.1f}")
    print(
        "\nreading: a core of "
        f"{sizes.h} blogs anchors "
        f"{100 * counter.tracked_counts['core'] / counter.total:.0f}% of all "
        "communities — maintaining just those (Section 5) keeps the most\n"
        "important structure current at a fraction of the full cost."
    )


if __name__ == "__main__":
    main()
