"""Running MCE when the graph does not fit in memory (Figure 3's story).

Sets a hard memory budget between what ExtMCE needs and what the
in-memory algorithm needs.  The in-memory enumeration aborts with
``MemoryBudgetExceeded``; ExtMCE finishes within its
``O(|G_H*| + |T_H*|)`` bound — and when the budget is squeezed below even
that, it shrinks the h-vertex core (Section 4.1.3) and still completes.

Run with::

    python examples/memory_budget.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    DiskGraph,
    ExtMCE,
    ExtMCEConfig,
    MemoryBudgetExceeded,
    MemoryModel,
    tomita_maximal_cliques,
)
from repro.generators import generate_dataset


def main() -> None:
    network = generate_dataset("lj")
    inmem_units = 2 * network.num_edges + network.num_vertices
    print(
        f"LiveJournal-like network: {network.num_vertices} vertices, "
        f"{network.num_edges} edges"
    )
    print(f"in-memory MCE needs {inmem_units} units resident (2m + n)")

    budget = inmem_units // 2
    print(f"\nsimulated machine budget: {budget} units\n")

    print("in-memory algorithm (Tomita et al. 2006):")
    try:
        count = sum(
            1
            for _ in tomita_maximal_cliques(
                network, memory=MemoryModel(budget=budget)
            )
        )
        print(f"  finished with {count} cliques (unexpected!)")
    except MemoryBudgetExceeded as error:
        print(f"  OUT OF MEMORY: {error}")

    print("\nExtMCE under the same budget:")
    with tempfile.TemporaryDirectory() as tmp:
        disk = DiskGraph.create(Path(tmp) / "lj.bin", network)
        memory = MemoryModel(budget=budget)
        algo = ExtMCE(
            disk,
            ExtMCEConfig(workdir=tmp, memory_budget_units=budget),
            memory=memory,
        )
        count = sum(1 for _ in algo.enumerate_cliques())
    report = algo.report
    print(f"  completed: {count} maximal cliques")
    print(
        f"  peak memory {report.peak_memory_units} units "
        f"({100 * report.peak_memory_units / inmem_units:.0f}% of the "
        f"in-memory requirement)"
    )
    print(
        f"  {report.num_recursions} recursion steps, "
        f"{report.sequential_scans} sequential scans of the on-disk graph"
    )
    print(
        f"  first step used h = {report.steps[0].core_size} core vertices "
        f"(shrunk from the full h-index when the budget demands it)"
    )


if __name__ == "__main__":
    main()
