"""The full production pipeline: raw edge list to verified clique file.

Everything a real deployment needs, end to end:

1. **convert** an unordered text edge list to the sorted on-disk format
   with a bounded-memory external sort;
2. **enumerate** with ExtMCE under a memory budget, with per-step
   checkpoints (crash-resumable) and a JSONL telemetry trace;
3. **re-enumerate** on a 2-worker process pool (``ParallelExtMCE``) and
   check the parallel stream is identical to the serial one;
4. **verify** the output file against the graph.

Run with::

    python examples/external_pipeline.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import (
    CliqueFileSink,
    ExtMCE,
    ExtMCEConfig,
    MemoryModel,
    ParallelExtMCE,
    edge_list_file_to_disk_graph,
    load_trace,
    summarize_trace,
    verify_clique_set,
)
from repro.generators import DATASETS
from repro.storage.edgelist import write_edge_list


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # --- 0. A raw dataset, as it would arrive: shuffled text edges.
        edges = DATASETS["protein"].edges()
        random.Random(0).shuffle(edges)
        raw = root / "edges.txt"
        write_edge_list(raw, edges)
        print(f"raw input       : {raw.name}, {len(edges)} unordered edges")

        # --- 1. External-sort conversion (bounded memory).
        disk = edge_list_file_to_disk_graph(
            raw, root / "graph.bin", root / "sort", run_pairs=4096
        )
        print(
            f"converted       : {disk.path.name}, {disk.num_vertices} vertices, "
            f"{disk.num_edges} edges (4096-pair sort runs)"
        )

        # --- 2. Budgeted, checkpointed, traced enumeration.
        budget = (2 * disk.num_edges + disk.num_vertices) // 2
        memory = MemoryModel(budget=budget)
        config = ExtMCEConfig(
            workdir=root / "work",
            memory_budget_units=budget,
            checkpoint=True,
            trace_path=root / "run.jsonl",
        )
        algo = ExtMCE(disk, config, memory=memory)
        out = root / "cliques.txt"
        with CliqueFileSink(out) as sink:
            algo.run(sink=sink)
        print(
            f"enumerated      : {sink.count} maximal cliques under a "
            f"{budget}-unit budget (peak {memory.peak_units})"
        )

        # --- 3. The same run on a 2-worker pool: identical stream.
        parallel = ParallelExtMCE(
            disk,
            ExtMCEConfig(
                workdir=root / "work_par",
                memory_budget_units=budget,
                workers=2,
            ),
            memory=MemoryModel(budget=budget),
        )
        parallel_cliques = list(parallel.enumerate_cliques())
        assert parallel_cliques == [
            frozenset(int(x) for x in line.split())
            for line in out.read_text().splitlines()
        ]
        print(
            f"parallel        : 2 workers re-enumerated the same "
            f"{len(parallel_cliques)} cliques, in the same order "
            f"({parallel.fallback_steps} pool fallbacks)"
        )

        # --- 4. Trace summary.
        print()
        print(summarize_trace(load_trace(root / "run.jsonl")))

        # --- 5. Verification of the output file.
        graph = disk.to_adjacency_graph()
        cliques = (
            frozenset(int(x) for x in line.split())
            for line in out.read_text().splitlines()
        )
        report = verify_clique_set(graph, cliques)
        print()
        print(f"verification    : {report.summary()}")
        assert report.ok


if __name__ == "__main__":
    main()
