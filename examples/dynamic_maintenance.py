"""Maintaining maximal cliques on a growing network (paper Section 5).

A network that gains edges continuously cannot afford full re-enumeration
per update, and the complete clique set is too large to maintain.  The
paper's answer: maintain only the H*-graph's clique tree ``T_H*`` — cheap
because few updates touch the core — and recompute the full answer on
demand, seeded with the maintained tree.

Run with::

    python examples/dynamic_maintenance.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.dynamic import HStarMaintainer
from repro.generators import DATASETS
from repro.generators.streams import edge_stream, split_into_periods


def main() -> None:
    spec = DATASETS["protein"]
    stream = edge_stream(spec.edges())
    warmup, periods = split_into_periods(stream, num_periods=4, warmup_fraction=0.2)
    print(
        f"replaying the growth of a {spec.num_vertices}-protein network: "
        f"{len(warmup)} warm-up edges, then {len(periods)} periods"
    )

    maintainer = HStarMaintainer()
    maintainer.apply_stream(warmup)
    print(
        f"after warm-up: {maintainer.graph.num_edges} edges, "
        f"h = {maintainer.h}, {len(maintainer.star_cliques())} core cliques"
    )

    for index, period in enumerate(periods, start=1):
        before = maintainer.stats.updates_hitting_star
        started = time.perf_counter()
        maintainer.apply_stream(period)
        elapsed = time.perf_counter() - started
        hits = maintainer.stats.updates_hitting_star - before
        print(
            f"\nperiod {index}: +{len(period)} edges in {elapsed:.2f}s — "
            f"{hits} touched the H*-graph "
            f"({100 * hits / len(period):.0f}%), h is now {maintainer.h}"
        )

        with tempfile.TemporaryDirectory() as tmp:
            cliques, report = maintainer.compute_all_max_cliques(
                Path(tmp) / "mce", use_maintained_tree=True
            )
        print(
            f"  on-demand full enumeration: {len(cliques)} maximal cliques "
            f"in {report.elapsed_seconds:.2f}s (seeded by the maintained tree)"
        )

    stats = maintainer.stats
    print(
        f"\ntotals: {stats.updates_total} updates, "
        f"{stats.updates_hitting_star} core hits "
        f"({100 * stats.hit_fraction:.0f}%), "
        f"avg {stats.average_hit_milliseconds:.2f} ms per core hit, "
        f"{stats.core_rebuilds} core rebuilds"
    )


if __name__ == "__main__":
    main()
