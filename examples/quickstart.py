"""Quickstart: enumerate the maximal cliques of a graph with ExtMCE.

ExtMCE never holds the whole graph in memory: it writes the graph to disk
storage, extracts the H*-graph (the h-index core plus its edges), computes
that region's maximal cliques, and recurses over the remainder — streaming
out each maximal clique as soon as it is proven globally maximal.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    AdjacencyGraph,
    DiskGraph,
    ExtMCE,
    ExtMCEConfig,
    tomita_maximal_cliques,
)


def main() -> None:
    # The paper's Figure 1 example: a small network with a 5-vertex core.
    edges = [
        ("a", "b"), ("a", "c"), ("b", "c"), ("b", "d"), ("b", "e"),
        ("c", "d"), ("c", "e"), ("d", "e"),
        ("a", "w"), ("a", "x"), ("a", "y"), ("b", "w"), ("b", "x"),
        ("c", "w"), ("c", "x"), ("c", "y"), ("d", "r"), ("d", "z"),
        ("e", "s"), ("e", "y"),
        ("w", "x"), ("s", "y"), ("r", "z"), ("s", "t"), ("r", "q"),
    ]
    names = sorted({v for edge in edges for v in edge})
    ids = {name: index for index, name in enumerate(names)}
    labels = {index: name for name, index in ids.items()}
    graph = AdjacencyGraph.from_edges((ids[u], ids[v]) for u, v in edges)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    with tempfile.TemporaryDirectory() as tmp:
        disk = DiskGraph.create(Path(tmp) / "graph.bin", graph)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp))
        cliques = sorted(
            "".join(sorted(labels[v] for v in clique))
            for clique in algo.enumerate_cliques()
        )

    print(f"\n{len(cliques)} maximal cliques:")
    for clique in cliques:
        print(f"  {{{', '.join(clique)}}}")

    report = algo.report
    print(f"\nrecursion steps : {report.num_recursions}")
    print(f"peak memory     : {report.peak_memory_units} units")
    print(f"sequential scans: {report.sequential_scans}")

    # Sanity: the in-memory oracle agrees.
    oracle = {frozenset(c) for c in tomita_maximal_cliques(graph)}
    assert {frozenset(ids[ch] for ch in c) for c in cliques} == oracle
    print("\nmatches the in-memory Tomita enumeration: OK")


if __name__ == "__main__":
    main()
